package netstack

import (
	"io"
	"net"
	"sync"
	"time"

	"flick/internal/buffer"
)

// UserNet is the in-process user-space stack (the mTCP/DPDK substitute). The
// zero value is not usable; call NewUserNet.
//
// Cost model: DialCost and OpCost, when non-zero, burn CPU (busy-wait) per
// connect and per read/write respectively. They default to zero — the stack
// is genuinely cheap — and exist so experiments can dial in intermediate
// points between "kernel" and "free".
type UserNet struct {
	mu        sync.RWMutex
	listeners map[string]*userListener

	// DialCost is CPU burned per connection establishment.
	DialCost time.Duration
	// OpCost is CPU burned per read/write operation.
	OpCost time.Duration
	// ConnBuf is the per-direction ring capacity (default 64 KiB).
	ConnBuf int
	// Backlog is the accept queue depth (default 1024).
	Backlog int
}

// NewUserNet creates an empty user-space network.
func NewUserNet() *UserNet {
	return &UserNet{
		listeners: make(map[string]*userListener),
		ConnBuf:   64 << 10,
		Backlog:   8192,
	}
}

// Name implements Transport.
func (u *UserNet) Name() string { return "unet" }

// Listen implements Transport.
func (u *UserNet) Listen(address string) (net.Listener, error) {
	if address == "" {
		return nil, ErrNoListener
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, ok := u.listeners[address]; ok {
		return nil, ErrAddrInUse
	}
	l := &userListener{
		net:     u,
		address: address,
		backlog: make(chan *userConn, u.Backlog),
	}
	u.listeners[address] = l
	return l, nil
}

// Dial implements Transport.
func (u *UserNet) Dial(address string) (net.Conn, error) {
	u.mu.RLock()
	l := u.listeners[address]
	u.mu.RUnlock()
	if l == nil {
		return nil, ErrNoListener
	}
	Spin(u.DialCost)
	client, server := u.newPair(address)
	l.mu.Lock()
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return nil, ErrNoListener
	}
	select {
	case l.backlog <- server:
		return client, nil
	default:
		client.Close()
		server.Close()
		return nil, ErrBacklogFull
	}
}

// newPair builds the two endpoints of a connection sharing two half-duplex
// byte pipes.
func (u *UserNet) newPair(address string) (client, server *userConn) {
	c2s := newHalf(u.ConnBuf)
	s2c := newHalf(u.ConnBuf)
	client = &userConn{net: u, in: s2c, out: c2s, local: addr("client!" + address), remote: addr(address)}
	server = &userConn{net: u, in: c2s, out: s2c, local: addr(address), remote: addr("client!" + address)}
	return client, server
}

// unregister removes a closed listener.
func (u *UserNet) unregister(address string) {
	u.mu.Lock()
	delete(u.listeners, address)
	u.mu.Unlock()
}

// userListener implements net.Listener.
type userListener struct {
	net     *UserNet
	address string
	backlog chan *userConn

	mu     sync.Mutex
	closed bool
	done   chan struct{} // lazily created close signal
}

func (l *userListener) closeCh() chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.done == nil {
		l.done = make(chan struct{})
		if l.closed {
			close(l.done)
		}
	}
	return l.done
}

// Accept implements net.Listener.
func (l *userListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closeCh():
		// Drain anything raced into the backlog before closure.
		select {
		case c := <-l.backlog:
			return c, nil
		default:
			return nil, ErrClosed
		}
	}
}

// Close implements net.Listener.
func (l *userListener) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.done != nil {
		close(l.done)
	} else {
		l.done = make(chan struct{})
		close(l.done)
	}
	l.mu.Unlock()
	l.net.unregister(l.address)
	return nil
}

// Addr implements net.Listener.
func (l *userListener) Addr() net.Addr { return addr(l.address) }

// half is one direction of a connection: a ring buffer with blocking
// semantics and an optional readable callback (the "epoll" hook used by the
// platform's event-driven input tasks).
type half struct {
	mu       sync.Mutex
	canRead  *sync.Cond
	canWrite *sync.Cond
	ring     *buffer.Ring
	wclosed  bool // writer closed: readers see EOF after drain
	rclosed  bool // reader closed: writers get ErrClosed

	onReadable func() // called (without the lock) when bytes or EOF arrive
}

func newHalf(bufSize int) *half {
	h := &half{ring: buffer.NewRingBuf(buffer.Global.Get(ringClass(bufSize)))}
	h.canRead = sync.NewCond(&h.mu)
	h.canWrite = sync.NewCond(&h.mu)
	return h
}

// ringClass rounds a requested buffer size up to a power of two so the
// backing slice comes from (and returns to) an exact pool class.
func ringClass(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}

// maybeRelease returns the ring's backing buffer to the pool once both the
// writer and the reader side have closed. Callers must hold h.mu. All data
// paths check the closed flags before touching the ring, so a nil ring is
// never dereferenced.
func (h *half) maybeRelease() {
	if h.wclosed && h.rclosed && h.ring != nil {
		buffer.Global.Put(h.ring.Buf())
		h.ring = nil
	}
}

// userConn implements net.Conn over two halves.
type userConn struct {
	net    *UserNet
	in     *half // peer writes here; we read
	out    *half // we write here; peer reads
	local  net.Addr
	remote net.Addr

	dlMu          sync.Mutex
	readDeadline  time.Time
	writeDeadline time.Time
	closeOnce     sync.Once
}

// Read implements net.Conn. It blocks until data, EOF, deadline or close.
func (c *userConn) Read(p []byte) (int, error) {
	Spin(c.net.OpCost)
	h := c.in
	var timer *time.Timer
	c.dlMu.Lock()
	dl := c.readDeadline
	c.dlMu.Unlock()
	if !dl.IsZero() {
		d := time.Until(dl)
		if d <= 0 {
			return 0, ErrTimeout
		}
		timer = time.AfterFunc(d, func() {
			h.mu.Lock()
			h.canRead.Broadcast()
			h.mu.Unlock()
		})
		defer timer.Stop()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for {
		if h.rclosed {
			return 0, ErrClosed
		}
		if h.ring.Len() > 0 {
			n, _ := h.ring.Read(p)
			h.canWrite.Broadcast()
			return n, nil
		}
		if h.wclosed {
			return 0, io.EOF
		}
		if !dl.IsZero() && !time.Now().Before(dl) {
			return 0, ErrTimeout
		}
		h.canRead.Wait()
	}
}

// TryRead reads without blocking; n == 0 with nil error means "would block".
// EOF is reported as (0, io.EOF-equivalent).
func (c *userConn) TryRead(p []byte) (int, error) {
	h := c.in
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.rclosed {
		return 0, ErrClosed
	}
	if h.ring.Len() > 0 {
		n, _ := h.ring.Read(p)
		h.canWrite.Broadcast()
		return n, nil
	}
	if h.wclosed {
		return 0, io.EOF
	}
	return 0, nil
}

// armWriteTimer returns the current write deadline and, when one is set, a
// timer that wakes blocked writers at expiry (nil timer when no deadline).
// The expired result reports a deadline already in the past.
func (c *userConn) armWriteTimer(h *half) (dl time.Time, timer *time.Timer, expired bool) {
	c.dlMu.Lock()
	dl = c.writeDeadline
	c.dlMu.Unlock()
	if dl.IsZero() {
		return dl, nil, false
	}
	d := time.Until(dl)
	if d <= 0 {
		return dl, nil, true
	}
	timer = time.AfterFunc(d, func() {
		h.mu.Lock()
		h.canWrite.Broadcast()
		h.mu.Unlock()
	})
	return dl, timer, false
}

// writeLocked copies p into h's ring, blocking on canWrite when full and
// running the readable callback (without the lock) as bytes land. h.mu must
// be held on entry and is held on return.
func writeLocked(h *half, p []byte, dl time.Time) (int, error) {
	written := 0
	for written < len(p) {
		if h.wclosed || h.rclosed {
			return written, ErrClosed
		}
		n, err := h.ring.Write(p[written:])
		written += n
		if n > 0 {
			h.canRead.Broadcast()
			cb := h.onReadable
			if cb != nil {
				h.mu.Unlock()
				cb()
				h.mu.Lock()
				continue
			}
		}
		if written == len(p) {
			break
		}
		if err == buffer.ErrRingFull || n == 0 {
			if !dl.IsZero() && !time.Now().Before(dl) {
				return written, ErrTimeout
			}
			h.canWrite.Wait()
		}
	}
	return written, nil
}

// Write implements net.Conn. It blocks until all of p is accepted, the peer
// stops reading, or the deadline expires.
func (c *userConn) Write(p []byte) (int, error) {
	Spin(c.net.OpCost)
	h := c.out
	dl, timer, expired := c.armWriteTimer(h)
	if expired {
		return 0, ErrTimeout
	}
	if timer != nil {
		defer timer.Stop()
	}
	h.mu.Lock()
	n, err := writeLocked(h, p, dl)
	h.mu.Unlock()
	return n, err
}

// WriteBatch implements netstack.BatchWriter: it writes every buffer in
// order while holding the connection lock once for the whole batch — the
// user-space analogue of writev. Semantics match Write (per-op cost burned
// once, blocks until everything is accepted, honours the write deadline).
func (c *userConn) WriteBatch(bufs [][]byte) (int64, error) {
	Spin(c.net.OpCost)
	h := c.out
	dl, timer, expired := c.armWriteTimer(h)
	if expired {
		return 0, ErrTimeout
	}
	if timer != nil {
		defer timer.Stop()
	}
	var total int64
	h.mu.Lock()
	for _, p := range bufs {
		n, err := writeLocked(h, p, dl)
		total += int64(n)
		if err != nil {
			h.mu.Unlock()
			return total, err
		}
	}
	h.mu.Unlock()
	return total, nil
}

// Close implements net.Conn: both directions shut down, peer reads EOF.
func (c *userConn) Close() error {
	c.closeOnce.Do(func() {
		// Our outbound half: mark writer-closed so the peer drains then EOFs.
		c.out.mu.Lock()
		c.out.wclosed = true
		c.out.canRead.Broadcast()
		c.out.canWrite.Broadcast()
		cb := c.out.onReadable
		c.out.maybeRelease()
		c.out.mu.Unlock()
		if cb != nil {
			cb() // deliver the EOF "event"
		}
		// Our inbound half: mark reader-closed so peer writes fail promptly.
		c.in.mu.Lock()
		c.in.rclosed = true
		c.in.canRead.Broadcast()
		c.in.canWrite.Broadcast()
		c.in.maybeRelease()
		c.in.mu.Unlock()
	})
	return nil
}

// SetReadableCallback registers fn to run whenever bytes (or EOF) become
// available for reading. This is the event-loop hook: the FLICK platform's
// input tasks are scheduled from here rather than parking a goroutine per
// connection. Passing nil clears the callback. If data is already buffered,
// fn fires immediately.
func (c *userConn) SetReadableCallback(fn func()) {
	h := c.in
	h.mu.Lock()
	h.onReadable = fn
	pending := h.wclosed || (h.ring != nil && h.ring.Len() > 0)
	h.mu.Unlock()
	if fn != nil && pending {
		fn()
	}
}

// LocalAddr implements net.Conn.
func (c *userConn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *userConn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn.
func (c *userConn) SetDeadline(t time.Time) error {
	c.SetReadDeadline(t)
	c.SetWriteDeadline(t)
	return nil
}

// SetReadDeadline implements net.Conn.
func (c *userConn) SetReadDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.readDeadline = t
	c.dlMu.Unlock()
	c.in.mu.Lock()
	c.in.canRead.Broadcast()
	c.in.mu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn.
func (c *userConn) SetWriteDeadline(t time.Time) error {
	c.dlMu.Lock()
	c.writeDeadline = t
	c.dlMu.Unlock()
	c.out.mu.Lock()
	c.out.canWrite.Broadcast()
	c.out.mu.Unlock()
	return nil
}

var _ net.Conn = (*userConn)(nil)
var _ Transport = (*UserNet)(nil)
