package netstack

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestUserNetListenDial(t *testing.T) {
	u := NewUserNet()
	l, err := u.Listen("svc:80")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(c, buf); err != nil {
			done <- err
			return
		}
		if string(buf) != "hello" {
			done <- errors.New("bad payload " + string(buf))
			return
		}
		_, err = c.Write([]byte("world"))
		done <- err
	}()

	c, err := u.Dial("svc:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("reply = %q", buf)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestUserNetDialNoListener(t *testing.T) {
	u := NewUserNet()
	if _, err := u.Dial("nobody:1"); err != ErrNoListener {
		t.Fatalf("err = %v, want ErrNoListener", err)
	}
}

func TestUserNetListenTwice(t *testing.T) {
	u := NewUserNet()
	if _, err := u.Listen("svc:80"); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Listen("svc:80"); err != ErrAddrInUse {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestUserNetListenerCloseUnblocksAccept(t *testing.T) {
	u := NewUserNet()
	l, _ := u.Listen("svc:80")
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.Close()
	select {
	case err := <-errc:
		if err != ErrClosed {
			t.Fatalf("Accept err = %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock on Close")
	}
	// Address is free again.
	if _, err := u.Listen("svc:80"); err != nil {
		t.Fatalf("relisten: %v", err)
	}
}

func TestUserNetEOFOnPeerClose(t *testing.T) {
	u := NewUserNet()
	l, _ := u.Listen("s:1")
	go func() {
		c, _ := l.Accept()
		c.Write([]byte("bye"))
		c.Close()
	}()
	c, err := u.Dial("s:1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "bye" {
		t.Fatalf("data = %q", data)
	}
}

func TestUserNetWriteAfterPeerClose(t *testing.T) {
	u := NewUserNet()
	l, _ := u.Listen("s:1")
	accepted := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		accepted <- c
	}()
	c, _ := u.Dial("s:1")
	srv := <-accepted
	srv.Close()
	// Writes must eventually fail, not hang.
	var err error
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, err = c.Write(bytes.Repeat([]byte{1}, 1024)); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("write to closed peer never failed")
	}
}

func TestUserNetLargeTransfer(t *testing.T) {
	u := NewUserNet()
	l, _ := u.Listen("s:1")
	const total = 4 << 20 // 4 MiB, far beyond the 64 KiB ring
	go func() {
		c, _ := l.Accept()
		defer c.Close()
		buf := make([]byte, 32<<10)
		n := 0
		for n < total {
			m, err := c.Read(buf)
			n += m
			if err != nil {
				return
			}
		}
		c.Write([]byte{0xAA})
	}()
	c, _ := u.Dial("s:1")
	defer c.Close()
	chunk := make([]byte, 64<<10)
	sent := 0
	for sent < total {
		n, err := c.Write(chunk)
		if err != nil {
			t.Fatal(err)
		}
		sent += n
	}
	ack := make([]byte, 1)
	if _, err := io.ReadFull(c, ack); err != nil || ack[0] != 0xAA {
		t.Fatalf("ack = %v, %v", ack, err)
	}
}

func TestUserNetReadDeadline(t *testing.T) {
	u := NewUserNet()
	l, _ := u.Listen("s:1")
	go l.Accept()
	c, _ := u.Dial("s:1")
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("expected timeout")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("err = %v, want timeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline far exceeded")
	}
}

func TestUserNetReadableCallback(t *testing.T) {
	u := NewUserNet()
	l, _ := u.Listen("s:1")
	srvc := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		srvc <- c
	}()
	c, _ := u.Dial("s:1")
	srv := <-srvc

	var mu sync.Mutex
	events := 0
	srv.(Readable).SetReadableCallback(func() {
		mu.Lock()
		events++
		mu.Unlock()
	})
	c.Write([]byte("x"))
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	got := events
	mu.Unlock()
	if got == 0 {
		t.Fatal("callback never fired")
	}
	// TryRead drains without blocking.
	buf := make([]byte, 8)
	n, err := srv.(Readable).TryRead(buf)
	if err != nil || n != 1 || buf[0] != 'x' {
		t.Fatalf("TryRead = %d, %v", n, err)
	}
	// Empty: would-block.
	n, err = srv.(Readable).TryRead(buf)
	if n != 0 || err != nil {
		t.Fatalf("TryRead empty = %d, %v", n, err)
	}
	// EOF surfaces through TryRead after peer closes.
	c.Close()
	deadline := time.Now().Add(time.Second)
	for {
		_, err = srv.(Readable).TryRead(buf)
		if err == io.EOF {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("TryRead after close = %v, want EOF", err)
		}
	}
}

func TestUserNetCallbackFiresImmediatelyWhenPending(t *testing.T) {
	u := NewUserNet()
	l, _ := u.Listen("s:1")
	srvc := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		srvc <- c
	}()
	c, _ := u.Dial("s:1")
	srv := <-srvc
	c.Write([]byte("pending"))
	// Give the write time to land before registering.
	time.Sleep(5 * time.Millisecond)
	fired := make(chan struct{}, 1)
	srv.(Readable).SetReadableCallback(func() {
		select {
		case fired <- struct{}{}:
		default:
		}
	})
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("callback with pending data did not fire")
	}
}

func TestUserNetConcurrentConnections(t *testing.T) {
	u := NewUserNet()
	l, _ := u.Listen("s:1")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c) // echo
			}(c)
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := u.Dial("s:1")
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{byte(i)}, 100)
			c.Write(msg)
			got := make([]byte, 100)
			if _, err := io.ReadFull(c, got); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("echo mismatch for conn %d", i)
			}
		}(i)
	}
	wg.Wait()
	l.Close()
}

func TestKernelTCPLoopback(t *testing.T) {
	k := KernelTCP{}
	l, err := k.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback unavailable: %v", err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		io.Copy(c, c)
	}()
	c, err := k.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo = %q, %v", buf, err)
	}
	if k.Name() != "kernel" {
		t.Fatal("name")
	}
}

func TestSpinApproximates(t *testing.T) {
	start := time.Now()
	Spin(2 * time.Millisecond)
	el := time.Since(start)
	if el < 2*time.Millisecond {
		t.Fatalf("spin returned early: %v", el)
	}
	Spin(0)  // no-op
	Spin(-1) // no-op
}

func TestUserNetAddrs(t *testing.T) {
	u := NewUserNet()
	l, _ := u.Listen("svc:9")
	if l.Addr().String() != "svc:9" || l.Addr().Network() != "unet" {
		t.Fatalf("listener addr = %v/%v", l.Addr(), l.Addr().Network())
	}
	go l.Accept()
	c, _ := u.Dial("svc:9")
	if c.RemoteAddr().String() != "svc:9" {
		t.Fatalf("remote = %v", c.RemoteAddr())
	}
	if c.LocalAddr().String() == "" {
		t.Fatal("empty local addr")
	}
}

func TestUserNetDialCostApplied(t *testing.T) {
	u := NewUserNet()
	u.DialCost = 2 * time.Millisecond
	l, _ := u.Listen("s:1")
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	for i := 0; i < 5; i++ {
		c, err := u.Dial("s:1")
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if el := time.Since(start); el < 10*time.Millisecond {
		t.Fatalf("5 dials with 2ms cost took %v", el)
	}
}

func BenchmarkUserNetDial(b *testing.B) {
	u := NewUserNet()
	l, _ := u.Listen("s:1")
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := u.Dial("s:1")
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

func BenchmarkUserNetRoundTrip(b *testing.B) {
	u := NewUserNet()
	l, _ := u.Listen("s:1")
	go func() {
		c, _ := l.Accept()
		buf := make([]byte, 128)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			c.Write(buf[:n])
		}
	}()
	c, _ := u.Dial("s:1")
	defer c.Close()
	msg := make([]byte, 64)
	buf := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(msg)
		io.ReadFull(c, buf)
	}
}
