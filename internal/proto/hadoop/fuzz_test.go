package hadoop

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flick/internal/buffer"
	"flick/internal/value"
)

// FuzzHadoopDecode feeds arbitrary bytes through the Hadoop KV grammar:
// decoding must never panic, and decode→encode→decode must be a fixed
// point for every successfully decoded pair.
func FuzzHadoopDecode(f *testing.F) {
	if raw, err := os.ReadFile(filepath.Join("testdata", "wordcount_pairs.bin")); err == nil {
		f.Add(raw)
	}
	f.Add([]byte{0, 0, 0, 5, 0, 0, 0, 1, 'a', 'p', 'p', 'l', 'e', '1'})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		q := buffer.NewQueue(nil)
		q.Append(data)
		dec := Codec.NewDecoder()
		for i := 0; i < 64; i++ {
			msg, ok, err := dec.Decode(q)
			if err != nil || !ok {
				break
			}
			Codec.ClearRaw(msg)
			e1, err := Codec.Encode(nil, msg)
			if err != nil {
				t.Fatalf("rebuild encode failed: %v", err)
			}
			q2 := buffer.NewQueue(nil)
			q2.Append(e1)
			msg2, ok2, err2 := Codec.NewDecoder().Decode(q2)
			if err2 != nil || !ok2 {
				t.Fatalf("re-decode of rebuilt pair failed (ok=%v err=%v): %x", ok2, err2, e1)
			}
			if !value.Equal(msg.Field("key"), msg2.Field("key")) ||
				!value.Equal(msg.Field("value"), msg2.Field("value")) {
				t.Fatalf("pair changed across round trip")
			}
			Codec.ClearRaw(msg2)
			e2, err := Codec.Encode(nil, msg2)
			if err != nil {
				t.Fatalf("second rebuild encode failed: %v", err)
			}
			if !bytes.Equal(e1, e2) {
				t.Fatalf("rebuild encoding not a fixed point")
			}
			msg2.Release()
			msg.Release()
		}
	})
}
