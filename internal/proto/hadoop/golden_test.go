package hadoop

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestGoldenPairs streams the checked-in wordcount pair file and checks
// field-level results and byte-exact re-encoding of the whole stream.
func TestGoldenPairs(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "wordcount_pairs.bin"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(raw))
	want := []struct{ k, v string }{
		{"apple", "1"},
		{"banana", "17"},
		{"", ""},
	}
	var reencoded []byte
	for i, w := range want {
		msg, err := r.Read()
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if Key(msg) != w.k || string(Value(msg)) != w.v {
			t.Fatalf("pair %d = (%q,%q), want (%q,%q)", i, Key(msg), Value(msg), w.k, w.v)
		}
		reencoded, err = Codec.Encode(reencoded, msg)
		if err != nil {
			t.Fatalf("pair %d encode: %v", i, err)
		}
		msg.Release()
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF after last pair, got %v", err)
	}
	if !bytes.Equal(reencoded, raw) {
		t.Fatalf("stream re-encode differs:\n got %x\nwant %x", reencoded, raw)
	}
}
