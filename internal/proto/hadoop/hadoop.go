// Package hadoop implements the intermediate key/value stream format used
// between Hadoop mappers and the FLICK in-network aggregator: a sequence of
// length-prefixed key/value pairs (see DESIGN.md for the varint→fixed-width
// substitution note).
package hadoop

import (
	"encoding/binary"
	"fmt"
	"io"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/value"
)

// Codec is the compiled Hadoop KV grammar. Raw capture is on (free with the
// zero-copy decoder): pairs forwarded unmodified re-emit their wire image
// by reference.
var Codec = grammar.HadoopKVUnit().MustCompile(grammar.CaptureRaw())

// Desc describes KV records (fields "key" and "value").
var Desc = Codec.Desc()

// KV builds a key/value record.
func KV(key, val []byte) value.Value {
	rec := Desc.New()
	rec.SetField("key", value.Bytes(key))
	rec.SetField("value", value.Bytes(val))
	return rec
}

// Key returns a record's key as a string.
func Key(msg value.Value) string { return msg.Field("key").AsString() }

// Value returns a record's value bytes.
func Value(msg value.Value) []byte { return msg.Field("value").AsBytes() }

// Writer streams KV pairs onto an io.Writer with internal batching.
type Writer struct {
	w   io.Writer
	buf []byte
}

// NewWriter creates a streaming writer.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, buf: make([]byte, 0, 32<<10)}
}

// Write appends one pair to the batch buffer, flushing when full.
func (w *Writer) Write(key, val []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(len(key)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(val)))
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, key...)
	w.buf = append(w.buf, val...)
	if len(w.buf) >= 16<<10 {
		return w.Flush()
	}
	return nil
}

// Flush writes any batched pairs.
func (w *Writer) Flush() error {
	if len(w.buf) == 0 {
		return nil
	}
	_, err := w.w.Write(w.buf)
	w.buf = w.buf[:0]
	return err
}

// Reader streams KV pairs off an io.Reader.
type Reader struct {
	r    io.Reader
	q    *buffer.Queue
	dec  grammar.StreamDecoder
	rbuf []byte
}

// NewReader creates a streaming reader.
func NewReader(r io.Reader) *Reader {
	return &Reader{
		r:    r,
		q:    buffer.NewQueue(nil),
		dec:  Codec.NewDecoder(),
		rbuf: make([]byte, 32<<10),
	}
}

// Read returns the next pair, or io.EOF at a clean end of stream.
func (r *Reader) Read() (value.Value, error) {
	for {
		if msg, ok, err := r.dec.Decode(r.q); err != nil {
			return value.Null, err
		} else if ok {
			return msg, nil
		}
		n, err := r.r.Read(r.rbuf)
		if n > 0 {
			r.q.Append(r.rbuf[:n])
			continue
		}
		if err == io.EOF && r.q.Len() > 0 {
			return value.Null, fmt.Errorf("hadoop: truncated pair (%d trailing bytes)", r.q.Len())
		}
		if err != nil {
			return value.Null, err
		}
	}
}
