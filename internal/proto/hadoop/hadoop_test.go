package hadoop

import (
	"bytes"
	"io"
	"strconv"
	"testing"
	"testing/quick"
)

func TestWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	pairs := [][2]string{{"apple", "1"}, {"banana", "2"}, {"cherry", "30"}}
	for _, p := range pairs {
		if err := w.Write([]byte(p[0]), []byte(p[1])); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for _, p := range pairs {
		kv, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if Key(kv) != p[0] || string(Value(kv)) != p[1] {
			t.Fatalf("got %q/%q want %q/%q", Key(kv), Value(kv), p[0], p[1])
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("end err = %v, want EOF", err)
	}
}

func TestWriterAutoFlush(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	big := bytes.Repeat([]byte{'x'}, 10<<10)
	w.Write([]byte("k1"), big)
	w.Write([]byte("k2"), big) // crosses the 16 KiB threshold → auto flush
	if buf.Len() == 0 {
		t.Fatal("no auto flush")
	}
	w.Flush()
	r := NewReader(&buf)
	for _, want := range []string{"k1", "k2"} {
		kv, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if Key(kv) != want {
			t.Fatalf("key = %q", Key(kv))
		}
	}
}

func TestReaderTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Write([]byte("key"), []byte("value"))
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-2]
	r := NewReader(bytes.NewReader(trunc))
	if _, err := r.Read(); err == nil || err == io.EOF {
		t.Fatalf("err = %v, want truncation error", err)
	}
}

func TestKVHelpers(t *testing.T) {
	kv := KV([]byte("k"), []byte("v"))
	if Key(kv) != "k" || string(Value(kv)) != "v" {
		t.Fatal("kv helpers")
	}
}

func TestEmptyStream(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v", err)
	}
}

// Property: any sequence of pairs written then read back is preserved in
// order and content.
func TestStreamRoundTripProperty(t *testing.T) {
	f := func(keys [][]byte, n uint8) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i, k := range keys {
			if len(k) > 1024 {
				k = k[:1024]
			}
			v := strconv.Itoa(i)
			if err := w.Write(k, []byte(v)); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r := NewReader(&buf)
		for i, k := range keys {
			if len(k) > 1024 {
				k = k[:1024]
			}
			kv, err := r.Read()
			if err != nil {
				return false
			}
			if !bytes.Equal(kv.Field("key").AsBytes(), k) {
				return false
			}
			if string(Value(kv)) != strconv.Itoa(i) {
				return false
			}
		}
		_, err := r.Read()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriterThroughput(b *testing.B) {
	w := NewWriter(io.Discard)
	key := []byte("benchmark")
	val := []byte("1")
	b.SetBytes(int64(8 + len(key) + len(val)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write(key, val)
	}
	w.Flush()
}
