package http

import (
	"testing"
	"time"

	"flick/internal/buffer"
	"flick/internal/metrics"
)

// TestDecodeEncodeZeroAlloc is the alloc-regression gate for the HTTP hot
// path: a request arriving in a pooled chunk is decoded in place, the
// record forwarded (retain/release cycle), re-encoded into a pooled scatter
// list via the raw fast path, and everything recycled — with zero heap
// allocations per message in steady state. The loop carries the live
// latency instrumentation the core pipeline adds around this codec (a
// monotonic stamp at decode, a sharded histogram record at encode), so the
// gate measures the instrumented hot path, not a bare one.
func TestDecodeEncodeZeroAlloc(t *testing.T) {
	wire := BuildRequest(nil, "GET", "/index.html", "bench", true, nil)
	pool := buffer.NewPool(64)
	pool.Prime(8)
	q := buffer.NewQueue(pool)
	dec := RequestFormat{}.NewDecoder()
	sc := buffer.NewScatter(pool)
	lat := metrics.NewShardedHistogram(2)
	var scratch []byte
	var sink int64

	allocs := testing.AllocsPerRun(1000, func() {
		start := metrics.Now()
		ref := pool.GetRef(len(wire))
		copy(ref.Bytes(), wire)
		q.AppendRef(ref, len(wire))
		msg, ok, err := dec.Decode(q)
		if err != nil || !ok {
			t.Fatalf("decode failed: ok=%v err=%v", ok, err)
		}
		// Simulate a graph hop: the channel retains, the producer drops its
		// reference, the consumer encodes and releases.
		msg.Retain()
		msg.Release()
		sink += msg.Field("content_length").AsInt()
		scratch, err = RequestFormat{}.EncodeScatter(sc, scratch, msg)
		if err != nil {
			t.Fatalf("encode failed: %v", err)
		}
		msg.Release()
		if sc.Len() != len(wire) {
			t.Fatalf("scatter holds %d bytes, want %d", sc.Len(), len(wire))
		}
		sc.Reset()
		lat.Record(0, time.Duration(metrics.Now()-start))
	})
	if allocs != 0 {
		t.Fatalf("HTTP decode→encode round trip allocates %.1f/op, want 0", allocs)
	}
	if n := lat.Count(); n < 1000 {
		t.Fatalf("latency histogram recorded %d round trips, want >= 1000", n)
	}

	s := pool.Stats()
	if s.Oversized != 0 {
		t.Fatalf("hot path hit the over-MaxClass fallback %d times", s.Oversized)
	}
	if s.Coalesced != 0 {
		t.Fatalf("single-chunk messages coalesced %d times", s.Coalesced)
	}
	if s.Views == 0 {
		t.Fatalf("zero-copy view path never taken")
	}
	if s.RefGets != s.RefPuts {
		t.Fatalf("region leak: %d handed out, %d recycled", s.RefGets, s.RefPuts)
	}
	_ = sink
}

// TestResponseDecodeZeroAlloc covers the response decoder (the loadgen hot
// path) including the Content-Length Atoi.
func TestResponseDecodeZeroAlloc(t *testing.T) {
	body := []byte("Hello, world! This payload mimics the 137-byte static object.")
	wire := BuildResponse(nil, 200, "OK", true, body)
	pool := buffer.NewPool(64)
	pool.Prime(8)
	q := buffer.NewQueue(pool)
	dec := ResponseFormat{}.NewDecoder()
	var sink int64

	allocs := testing.AllocsPerRun(1000, func() {
		ref := pool.GetRef(len(wire))
		copy(ref.Bytes(), wire)
		q.AppendRef(ref, len(wire))
		msg, ok, err := dec.Decode(q)
		if err != nil || !ok {
			t.Fatalf("decode failed: ok=%v err=%v", ok, err)
		}
		sink += msg.Field("content_length").AsInt()
		msg.Release()
	})
	if allocs != 0 {
		t.Fatalf("HTTP response decode allocates %.1f/op, want 0", allocs)
	}
	_ = sink
}
