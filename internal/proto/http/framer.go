package http

import (
	"fmt"

	"flick/internal/buffer"
	"flick/internal/upstream"
)

// Demultiplexing context bits carried per request through the shared
// upstream layer's FIFO (upstream.Context). FrameRequestLen captures them
// at write time; FrameResponseLen consumes them, because HTTP response
// framing is request-aware: the wire bytes of a HEAD response are
// indistinguishable from a GET response's header block.
const (
	// CtxHEAD marks a HEAD request: the response's Content-Length
	// describes an entity that is never sent, so the response is framed
	// as its header block alone.
	CtxHEAD upstream.Context = 1 << 0
)

// maxInterim bounds the 1xx interim responses accepted ahead of one final
// response (a server looping on 100 Continue would otherwise pin the
// demultiplexer forever).
const maxInterim = 8

// FrameRequestLen reports the wire length of the HTTP/1.1 request starting
// at buffered offset from in q, without consuming any byte: header block
// through the \r\n\r\n terminator plus the body (Content-Length or chunked
// transfer-encoding). It returns 0 when the buffered bytes are still a
// prefix, and an error when they cannot frame (oversized headers or body,
// a malformed or duplicated Content-Length). The shared upstream
// connection layer uses it to count requests multiplexed onto a backend
// socket; the returned upstream.Context carries what the demultiplexer
// must know to frame the response (CtxHEAD). CONNECT is still rejected —
// after its 2xx the stream stops being HTTP and can never be multiplexed.
func FrameRequestLen(q *buffer.Queue, from int) (int, upstream.Context, error) {
	headLen, f, err := frameHead(q, from, true)
	if err != nil || headLen == 0 {
		return 0, 0, err
	}
	var method [8]byte
	got := q.PeekAt(method[:], from)
	if hasTokenPrefix(method[:got], "CONNECT") {
		return 0, 0, fmt.Errorf("http: CONNECT cannot be multiplexed (the tunnel stops being HTTP)")
	}
	var ctx upstream.Context
	if hasTokenPrefix(method[:got], "HEAD") {
		ctx = CtxHEAD
	}
	body := f.bodyLen
	if f.chunked {
		n, _, _, cerr := frameChunked(q, from+headLen)
		if cerr != nil || n == 0 {
			return 0, 0, cerr
		}
		body = n
	}
	return headLen + body, ctx, nil
}

// hasTokenPrefix reports whether b starts with the token followed by a
// space (method matching on the start line).
func hasTokenPrefix(b []byte, token string) bool {
	if len(b) < len(token)+1 || b[len(token)] != ' ' {
		return false
	}
	return string(b[:len(token)]) == token
}

// FrameResponseLen is the response-direction framer the demultiplexer
// splits a pipelined backend byte stream with: it reports the wire length
// of the response owed to the request whose demux context is ctx. Framing
// is request- and status-aware: a CtxHEAD response is its header block
// alone no matter what Content-Length says, 204/304 are bodiless even when
// they carry the entity's Content-Length, 1xx interim responses are framed
// together with the final response as one delivered view, and chunked
// transfer-encoding is scanned chunk by chunk (the whole chunked body
// delivers as one retained view). A response framed only by connection
// close — no Content-Length, no chunked — returns ErrUnframeable: on a
// shared socket its end cannot be found, so the demultiplexer fails the
// socket loudly rather than deliver a truncated view.
func FrameResponseLen(q *buffer.Queue, from int, ctx upstream.Context) (int, error) {
	total := 0
	for interim := 0; ; {
		headLen, f, err := frameHead(q, from+total, false)
		if err != nil {
			return 0, err
		}
		if headLen == 0 {
			return 0, nil
		}
		if f.status >= 100 && f.status < 200 {
			if f.status == 101 {
				return 0, fmt.Errorf("%w: 101 switching protocols", ErrUnframeable)
			}
			// Interim response: keep scanning; it and the final response
			// deliver to the requesting session as one view.
			total += headLen
			if interim++; interim > maxInterim {
				return 0, fmt.Errorf("%w: more than %d interim responses", ErrMalformed, maxInterim)
			}
			continue
		}
		switch {
		case ctx&CtxHEAD != 0 || f.status == 204 || f.status == 304:
			// Bodiless by rule (RFC 7230 §3.3.3): any Content-Length
			// describes an entity that is never sent.
			return total + headLen, nil
		case f.chunked:
			n, _, _, cerr := frameChunked(q, from+total+headLen)
			if cerr != nil || n == 0 {
				return 0, cerr
			}
			return total + headLen + n, nil
		case f.hasCL:
			return total + headLen + f.bodyLen, nil
		default:
			return 0, fmt.Errorf("%w: status %d with neither Content-Length nor chunked encoding", ErrUnframeable, f.status)
		}
	}
}

// frameHead scans for the header terminator at buffered offset from and
// parses the block's framing. headLen == 0 means more bytes are needed.
func frameHead(q *buffer.Queue, from int, isRequest bool) (int, framing, error) {
	scanned := from
	end, found := scanCRLFCRLF(q, &scanned)
	if !found {
		if q.Len()-from > MaxHeaderBytes {
			return 0, framing{}, fmt.Errorf("%w: headers exceed %d bytes", ErrTooLarge, MaxHeaderBytes)
		}
		return 0, framing{}, nil
	}
	headLen := end + 4 - from
	// Peek the header block through pooled scratch; the framer is stateless
	// so the copy is bounded by MaxHeaderBytes and leaves no garbage.
	ref := buffer.Global.GetRef(headLen)
	q.PeekAt(ref.Bytes(), from)
	f, err := parseFraming(ref.Bytes(), isRequest)
	ref.Release()
	if err != nil {
		return 0, framing{}, err
	}
	if f.bodyLen > MaxBodyBytes {
		return 0, framing{}, fmt.Errorf("%w: body of %d bytes", ErrTooLarge, f.bodyLen)
	}
	return headLen, f, nil
}

// frameChunked reports the wire length of the chunked body section
// starting at buffered offset from in q — every chunk-size line, chunk
// payload, the zero chunk and its trailer section through the final CRLF —
// without consuming a byte. n == 0 means the buffered bytes are still a
// prefix. dataLen is the decoded payload size and chunks the number of
// non-empty data chunks (the decoder's zero-copy fast path keys off
// chunks <= 1).
func frameChunked(q *buffer.Queue, from int) (n, dataLen, chunks int, err error) {
	off := from
	qlen := q.Len()
	for {
		size, lineLen, lerr := chunkSizeLine(q, off, qlen)
		if lerr != nil || lineLen == 0 {
			return 0, 0, 0, lerr
		}
		off += lineLen
		if size == 0 {
			break
		}
		if dataLen += size; dataLen > MaxBodyBytes {
			return 0, 0, 0, fmt.Errorf("%w: chunked body exceeds %d bytes", ErrTooLarge, MaxBodyBytes)
		}
		chunks++
		if off+size+2 > qlen {
			return 0, 0, 0, nil
		}
		cr, _ := q.PeekByte(off + size)
		lf, _ := q.PeekByte(off + size + 1)
		if cr != '\r' || lf != '\n' {
			return 0, 0, 0, fmt.Errorf("%w: chunk data not CRLF-terminated", ErrMalformed)
		}
		off += size + 2
	}
	// Trailer section: zero or more header lines, then an empty line.
	for {
		lineLen, terr := lineAt(q, off, qlen)
		if terr != nil || lineLen == 0 {
			return 0, 0, 0, terr
		}
		off += lineLen
		if lineLen == 2 { // bare CRLF: end of the chunked message
			return off - from, dataLen, chunks, nil
		}
	}
}

// lineAt reports the length, including the CRLF, of the line starting at
// buffered offset off (0 when the terminator is not buffered yet).
func lineAt(q *buffer.Queue, off, qlen int) (int, error) {
	i := q.IndexByte('\r', off)
	for i >= 0 && i+1 < qlen {
		if b, _ := q.PeekByte(i + 1); b == '\n' {
			n := i + 2 - off
			if n > MaxHeaderBytes {
				return 0, fmt.Errorf("%w: chunk line exceeds %d bytes", ErrTooLarge, MaxHeaderBytes)
			}
			return n, nil
		}
		i = q.IndexByte('\r', i+1)
	}
	if qlen-off > MaxHeaderBytes {
		return 0, fmt.Errorf("%w: chunk line exceeds %d bytes", ErrTooLarge, MaxHeaderBytes)
	}
	return 0, nil
}

// chunkSizeLine parses the chunk-size line at buffered offset off: a hex
// size, an optional ;chunk-extension (ignored), CRLF. lineLen == 0 means
// more bytes are needed.
func chunkSizeLine(q *buffer.Queue, off, qlen int) (size, lineLen int, err error) {
	n, err := lineAt(q, off, qlen)
	if err != nil || n == 0 {
		return 0, 0, err
	}
	digits, i := 0, 0
	for ; i < n-2; i++ {
		b, _ := q.PeekByte(off + i)
		var v int
		switch {
		case b >= '0' && b <= '9':
			v = int(b - '0')
		case b >= 'a' && b <= 'f':
			v = int(b-'a') + 10
		case b >= 'A' && b <= 'F':
			v = int(b-'A') + 10
		default:
			v = -1
		}
		if v < 0 {
			break
		}
		size = size<<4 | v
		if digits++; digits > 7 {
			return 0, 0, fmt.Errorf("%w: chunk size", ErrTooLarge)
		}
	}
	if digits == 0 {
		return 0, 0, fmt.Errorf("%w: missing chunk size", ErrMalformed)
	}
	if i < n-2 {
		if b, _ := q.PeekByte(off + i); b != ';' {
			return 0, 0, fmt.Errorf("%w: bad chunk-size line", ErrMalformed)
		}
	}
	return size, n, nil
}
