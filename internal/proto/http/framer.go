package http

import (
	"fmt"

	"flick/internal/buffer"
)

// FrameRequestLen reports the wire length of the HTTP/1.1 request starting
// at buffered offset from in q, without consuming any byte: header block
// through the \r\n\r\n terminator plus the Content-Length body. It returns
// 0 when the buffered bytes are still a prefix, and an error when they
// cannot frame (oversized headers or body, chunked transfer encoding —
// which cannot be pipelined — or a malformed Content-Length). The shared
// upstream connection layer uses it to count requests multiplexed onto a
// backend socket, so it also rejects methods whose responses cannot be
// framed by Content-Length alone: HEAD (the header describes a body that
// is never sent) and CONNECT (the stream stops being HTTP). The writing
// session fails; its client loses only its own connection.
func FrameRequestLen(q *buffer.Queue, from int) (int, error) {
	n, err := frameLen(q, from, true)
	if err == nil && n > 0 {
		var method [8]byte
		got := q.PeekAt(method[:], from)
		if hasTokenPrefix(method[:got], "HEAD") || hasTokenPrefix(method[:got], "CONNECT") {
			return 0, fmt.Errorf("http: %s requests cannot be multiplexed (response not length-delimited)",
				string(method[:indexByte(method[:got], ' ')]))
		}
	}
	return n, err
}

// hasTokenPrefix reports whether b starts with the token followed by a
// space (method matching on the start line).
func hasTokenPrefix(b []byte, token string) bool {
	if len(b) < len(token)+1 || b[len(token)] != ' ' {
		return false
	}
	return string(b[:len(token)]) == token
}

// FrameResponseLen is FrameRequestLen for responses: the demultiplexer
// splits a pipelined backend byte stream into per-request response views
// with it. Responses framed by connection close (no Content-Length) decode
// as zero-length bodies — a pipelined upstream requires length-delimited
// responses, which the repository's backends always produce. Known
// limitation (see ROADMAP): a 304 carrying the entity's Content-Length
// without a body would over-read; origins that emit those need
// request-aware framing.
func FrameResponseLen(q *buffer.Queue, from int) (int, error) {
	return frameLen(q, from, false)
}

func frameLen(q *buffer.Queue, from int, isRequest bool) (int, error) {
	scanned := from
	end, found := scanCRLFCRLF(q, &scanned)
	if !found {
		if q.Len()-from > MaxHeaderBytes {
			return 0, fmt.Errorf("%w: headers exceed %d bytes", ErrTooLarge, MaxHeaderBytes)
		}
		return 0, nil
	}
	headLen := end + 4 - from
	// Peek the header block through pooled scratch; the framer is stateless
	// so the copy is bounded by MaxHeaderBytes and leaves no garbage.
	ref := buffer.Global.GetRef(headLen)
	q.PeekAt(ref.Bytes(), from)
	bodyLen, _, err := parseFraming(ref.Bytes(), isRequest)
	ref.Release()
	if err != nil {
		return 0, err
	}
	if bodyLen > MaxBodyBytes {
		return 0, fmt.Errorf("%w: body of %d bytes", ErrTooLarge, bodyLen)
	}
	return headLen + bodyLen, nil
}
