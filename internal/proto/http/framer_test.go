package http

import (
	"testing"

	"flick/internal/buffer"
)

func TestFrameRequestLenMatchesDecoder(t *testing.T) {
	q := buffer.NewQueue(nil)
	wire := BuildRequest(nil, "POST", "/submit", "example.com", true, []byte("payload-bytes"))
	half := len(wire) / 2
	q.Append(wire[:half])
	if n, err := FrameRequestLen(q, 0); n != 0 && n != len(wire) || err != nil {
		// A prefix may already reveal the full length once headers are
		// complete; it must never mis-frame or error.
		t.Fatalf("prefix framing: n=%d err=%v", n, err)
	}
	q.Append(wire[half:])
	q.Append(wire)
	n, err := FrameRequestLen(q, 0)
	if err != nil || n != len(wire) {
		t.Fatalf("FrameRequestLen = %d, %v; want %d", n, err, len(wire))
	}
	if n2, err := FrameRequestLen(q, n); err != nil || n2 != len(wire) {
		t.Fatalf("FrameRequestLen at offset = %d, %v; want %d", n2, err, len(wire))
	}
	before := q.Len()
	msg, ok, derr := RequestFormat{}.NewDecoder().Decode(q)
	if derr != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, derr)
	}
	if consumed := before - q.Len(); consumed != n {
		t.Fatalf("decoder consumed %d, framer said %d", consumed, n)
	}
	msg.Release()
}

func TestFrameResponseLen(t *testing.T) {
	q := buffer.NewQueue(nil)
	wire := BuildResponse(nil, 200, "OK", true, []byte("hello body"))
	q.Append(wire)
	n, err := FrameResponseLen(q, 0)
	if err != nil || n != len(wire) {
		t.Fatalf("FrameResponseLen = %d, %v; want %d", n, err, len(wire))
	}
}

// TestFrameRequestLenRejectsUnframeableMethods pins the multiplexing
// safety rule: HEAD responses carry a Content-Length describing a body
// that never arrives, and CONNECT turns the stream into a tunnel — either
// would desynchronise the shared socket's response framing for every
// client on it.
func TestFrameRequestLenRejectsUnframeableMethods(t *testing.T) {
	for _, start := range []string{
		"HEAD /index.html HTTP/1.1\r\nHost: h\r\n\r\n",
		"CONNECT example.com:443 HTTP/1.1\r\nHost: h\r\n\r\n",
	} {
		q := buffer.NewQueue(nil)
		q.Append([]byte(start))
		if _, err := FrameRequestLen(q, 0); err == nil {
			t.Fatalf("%q accepted by the request framer", start[:12])
		}
	}
	// Chunked requests cannot be pipelined either.
	q := buffer.NewQueue(nil)
	q.Append([]byte("POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"))
	if _, err := FrameRequestLen(q, 0); err == nil {
		t.Fatal("chunked request accepted by the request framer")
	}
}
