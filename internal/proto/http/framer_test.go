package http

import (
	"errors"
	"testing"

	"flick/internal/buffer"
)

func TestFrameRequestLenMatchesDecoder(t *testing.T) {
	q := buffer.NewQueue(nil)
	wire := BuildRequest(nil, "POST", "/submit", "example.com", true, []byte("payload-bytes"))
	half := len(wire) / 2
	q.Append(wire[:half])
	if n, _, err := FrameRequestLen(q, 0); n != 0 && n != len(wire) || err != nil {
		// A prefix may already reveal the full length once headers are
		// complete; it must never mis-frame or error.
		t.Fatalf("prefix framing: n=%d err=%v", n, err)
	}
	q.Append(wire[half:])
	q.Append(wire)
	n, ctx, err := FrameRequestLen(q, 0)
	if err != nil || n != len(wire) {
		t.Fatalf("FrameRequestLen = %d, %v; want %d", n, err, len(wire))
	}
	if ctx != 0 {
		t.Fatalf("POST carries demux context %#x; want 0", ctx)
	}
	if n2, _, err := FrameRequestLen(q, n); err != nil || n2 != len(wire) {
		t.Fatalf("FrameRequestLen at offset = %d, %v; want %d", n2, err, len(wire))
	}
	before := q.Len()
	msg, ok, derr := RequestFormat{}.NewDecoder().Decode(q)
	if derr != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, derr)
	}
	if consumed := before - q.Len(); consumed != n {
		t.Fatalf("decoder consumed %d, framer said %d", consumed, n)
	}
	msg.Release()
}

func TestFrameResponseLen(t *testing.T) {
	q := buffer.NewQueue(nil)
	wire := BuildResponse(nil, 200, "OK", true, []byte("hello body"))
	q.Append(wire)
	n, err := FrameResponseLen(q, 0, 0)
	if err != nil || n != len(wire) {
		t.Fatalf("FrameResponseLen = %d, %v; want %d", n, err, len(wire))
	}
}

// TestHEADMultiplexes pins the tentpole fix: HEAD is accepted by the
// request framer, and the CtxHEAD context it captures makes the response
// framer stop at the header block even though the response advertises the
// entity's Content-Length — the body it describes is never sent.
func TestHEADMultiplexes(t *testing.T) {
	req := "HEAD /index.html HTTP/1.1\r\nHost: h\r\n\r\n"
	q := buffer.NewQueue(nil)
	q.Append([]byte(req))
	n, ctx, err := FrameRequestLen(q, 0)
	if err != nil || n != len(req) {
		t.Fatalf("FrameRequestLen(HEAD) = %d, %v; want %d", n, err, len(req))
	}
	if ctx&CtxHEAD == 0 {
		t.Fatalf("HEAD context = %#x; want CtxHEAD set", ctx)
	}

	resp := "HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n"
	rq := buffer.NewQueue(nil)
	rq.Append([]byte(resp))
	// Under the HEAD context the response is its header block alone...
	if n, err := FrameResponseLen(rq, 0, ctx); err != nil || n != len(resp) {
		t.Fatalf("HEAD response framed as %d, %v; want %d", n, err, len(resp))
	}
	// ...while the same bytes under a neutral context include the entity.
	if n, err := FrameResponseLen(rq, 0, 0); err != nil || n != len(resp)+5 {
		t.Fatalf("GET framing of same bytes = %d, %v; want %d", n, err, len(resp)+5)
	}
}

// TestFrameRequestLenRejectsConnect: after CONNECT's 2xx the stream stops
// being HTTP — it can never be multiplexed on a shared socket.
func TestFrameRequestLenRejectsConnect(t *testing.T) {
	q := buffer.NewQueue(nil)
	q.Append([]byte("CONNECT example.com:443 HTTP/1.1\r\nHost: h\r\n\r\n"))
	if _, _, err := FrameRequestLen(q, 0); err == nil {
		t.Fatal("CONNECT accepted by the request framer")
	}
}

// TestChunkedRequestFrames: a chunked request body frames once the zero
// chunk and trailer terminator are buffered, and stays staged (0) before.
func TestChunkedRequestFrames(t *testing.T) {
	head := "POST /up HTTP/1.1\r\nHost: h\r\nTransfer-Encoding: chunked\r\n\r\n"
	body := "5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n"
	q := buffer.NewQueue(nil)
	q.Append([]byte(head))
	if n, _, err := FrameRequestLen(q, 0); n != 0 || err != nil {
		t.Fatalf("chunked request framed without its body: n=%d err=%v", n, err)
	}
	q.Append([]byte(body[:7]))
	if n, _, err := FrameRequestLen(q, 0); n != 0 || err != nil {
		t.Fatalf("partial chunked body framed: n=%d err=%v", n, err)
	}
	q.Append([]byte(body[7:]))
	n, _, err := FrameRequestLen(q, 0)
	if err != nil || n != len(head)+len(body) {
		t.Fatalf("FrameRequestLen(chunked) = %d, %v; want %d", n, err, len(head)+len(body))
	}
}

// TestFrameResponseLenBodilessStatuses: 204 and 304 are bodiless by rule
// (RFC 7230 §3.3.3) even when they carry the entity's Content-Length —
// 304 routinely echoes the validator target's metadata.
func TestFrameResponseLenBodilessStatuses(t *testing.T) {
	for _, status := range []string{"204 No Content", "304 Not Modified"} {
		resp := "HTTP/1.1 " + status + "\r\nContent-Length: 1234\r\nETag: \"x\"\r\n\r\n"
		q := buffer.NewQueue(nil)
		q.Append([]byte(resp))
		if n, err := FrameResponseLen(q, 0, 0); err != nil || n != len(resp) {
			t.Fatalf("%s framed as %d, %v; want header-only %d", status, n, err, len(resp))
		}
	}
}

// TestFrameResponseLenInterim: 1xx interim responses frame together with
// the final response as one delivered view; 101 hands the socket to
// another protocol and is unframeable.
func TestFrameResponseLenInterim(t *testing.T) {
	interim := "HTTP/1.1 100 Continue\r\n\r\n"
	final := "HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"
	q := buffer.NewQueue(nil)
	q.Append([]byte(interim))
	if n, err := FrameResponseLen(q, 0, 0); n != 0 || err != nil {
		t.Fatalf("lone interim framed: n=%d err=%v", n, err)
	}
	q.Append([]byte(final))
	if n, err := FrameResponseLen(q, 0, 0); err != nil || n != len(interim)+len(final) {
		t.Fatalf("interim+final = %d, %v; want %d", n, err, len(interim)+len(final))
	}

	q = buffer.NewQueue(nil)
	q.Append([]byte("HTTP/1.1 101 Switching Protocols\r\nUpgrade: h2c\r\n\r\n"))
	if _, err := FrameResponseLen(q, 0, 0); !errors.Is(err, ErrUnframeable) {
		t.Fatalf("101 framing error = %v; want ErrUnframeable", err)
	}
}

// TestFrameResponseLenChunked: a chunked response frames through the zero
// chunk and trailer, and reports 0 while any chunk is still a prefix.
func TestFrameResponseLenChunked(t *testing.T) {
	head := "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
	body := "4\r\nwiki\r\n10\r\n0123456789abcdef\r\n0\r\nTrailer: v\r\n\r\n"
	q := buffer.NewQueue(nil)
	q.Append([]byte(head))
	for i := 0; i < len(body); i += 9 {
		if n, err := FrameResponseLen(q, 0, 0); n != 0 || err != nil {
			t.Fatalf("partial chunked response after %d body bytes: n=%d err=%v", i, n, err)
		}
		end := i + 9
		if end > len(body) {
			end = len(body)
		}
		q.Append([]byte(body[i:end]))
	}
	n, err := FrameResponseLen(q, 0, 0)
	if err != nil || n != len(head)+len(body) {
		t.Fatalf("FrameResponseLen(chunked) = %d, %v; want %d", n, err, len(head)+len(body))
	}
}

// TestFrameResponseLenUnframeable: a response delimited only by connection
// close has no findable end on a shared socket — the framer must say so
// loudly rather than guess.
func TestFrameResponseLenUnframeable(t *testing.T) {
	q := buffer.NewQueue(nil)
	q.Append([]byte("HTTP/1.1 200 OK\r\nConnection: close\r\n\r\npartial body"))
	if _, err := FrameResponseLen(q, 0, 0); !errors.Is(err, ErrUnframeable) {
		t.Fatalf("close-delimited framing error = %v; want ErrUnframeable", err)
	}
}
