package http

import (
	"bytes"
	"testing"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/value"
)

// FuzzHTTPDecode feeds arbitrary bytes through both HTTP decoders and
// asserts the safety contract of the zero-copy codec: decoding never
// panics, and for every message that decodes successfully the rebuilt
// encoding (raw image cleared) is a byte-exact fixed point of
// decode→encode.
func FuzzHTTPDecode(f *testing.F) {
	f.Add([]byte("GET /index.html HTTP/1.1\r\nHost: bench\r\n\r\n"))
	f.Add([]byte("POST /s HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 13\r\n\r\nHello, world!"))
	f.Add([]byte("HTTP/1.0 404 Not Found\r\nConnection: close\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"))
	f.Add([]byte("garbage\r\n\r\nmore garbage"))
	// Framing edge cases: smuggling guards, chunked wire, bodiless
	// statuses and Connection token lists.
	f.Add([]byte("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello"))
	f.Add([]byte("POST / HTTP/1.1\r\nContent-Length: 3\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"))
	f.Add([]byte("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4;ext=1\r\nwiki\r\n0\r\nX-T: v\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 304 Not Modified\r\nContent-Length: 1234\r\nETag: \"x\"\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 204 No Content\r\n\r\n"))
	f.Add([]byte("GET / HTTP/1.1\r\nConnection: close, TE\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok"))
	// Freshness material the cache layer parses out of decoded messages:
	// Vary lists, Cache-Control directives, validators and conditional
	// request headers in awkward-but-legal renderings.
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: Accept-Encoding,  X-Client , \r\n\r\nhi"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nVary: *\r\n\r\nhi"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: public, max-age=60, must-revalidate\r\n\r\nhi"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: max-age=\r\n\r\nhi"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nCache-Control: max-age=99999999999999999999\r\n\r\nhi"))
	f.Add([]byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\nETag: W/\"weak\"\r\nLast-Modified: Sat, 01 Jan 2022 00:00:00 GMT\r\nAge: 37\r\n\r\nhi"))
	f.Add([]byte("GET /c HTTP/1.1\r\nHost: h\r\nIf-None-Match: W/\"a\", \"b\" , *\r\n\r\n"))
	f.Add([]byte("GET /c HTTP/1.1\r\nHost: h\r\nIf-Modified-Since: Sat, 01 Jan 2022 00:00:00 GMT\r\nIf-None-Match: \"v1\"\r\n\r\n"))
	f.Add([]byte("HTTP/1.1 304 Not Modified\r\nETag: \"v1\"\r\nCache-Control: max-age=1\r\n\r\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, isReq := range []bool{true, false} {
			var format grammar.WireFormat = RequestFormat{}
			if !isReq {
				format = ResponseFormat{}
			}
			q := buffer.NewQueue(nil)
			q.Append(data)
			dec := format.NewDecoder()
			for i := 0; i < 64; i++ {
				msg, ok, err := dec.Decode(q)
				if err != nil || !ok {
					break
				}
				checkHTTPFixedPoint(t, format, msg)
				msg.Release()
			}
		}
	})
}

// checkHTTPFixedPoint asserts decode→encode→decode is a fixed point on the
// rebuild path: the first rebuild canonicalises Content-Length placement,
// after which encoding is byte-stable and semantic fields survive.
func checkHTTPFixedPoint(t *testing.T, format grammar.WireFormat, msg value.Value) {
	t.Helper()
	msg.SetField("_raw", value.Null) // force the rebuild encoder
	b1, err := format.Encode(nil, msg)
	if err != nil {
		t.Fatalf("rebuild encode of decoded message failed: %v", err)
	}
	q := buffer.NewQueue(nil)
	q.Append(b1)
	msg2, ok, err := format.NewDecoder().Decode(q)
	if err != nil || !ok {
		t.Fatalf("re-decode of rebuilt message failed (ok=%v err=%v): %q", ok, err, b1)
	}
	for _, field := range []string{"method", "uri", "body", "status", "content_length", "keep_alive"} {
		a, b := msg.Field(field), msg2.Field(field)
		if !value.Equal(a, b) {
			t.Fatalf("field %s changed across round trip: %v -> %v (wire %q)", field, a, b, b1)
		}
	}
	msg2.SetField("_raw", value.Null)
	b2, err := format.Encode(nil, msg2)
	if err != nil {
		t.Fatalf("second rebuild encode failed: %v", err)
	}
	msg2.Release()
	if !bytes.Equal(b1, b2) {
		t.Fatalf("rebuild encoding not a fixed point:\n b1 %q\n b2 %q", b1, b2)
	}
}
