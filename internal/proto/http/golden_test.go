package http

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/value"
)

func golden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func decodeGolden(t *testing.T, fmt grammar.WireFormat, raw []byte) value.Value {
	t.Helper()
	q := buffer.NewQueue(nil)
	q.Append(raw)
	msg, ok, err := fmt.NewDecoder().Decode(q)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !ok {
		t.Fatalf("message incomplete after %d bytes", len(raw))
	}
	if q.Len() != 0 {
		t.Fatalf("%d trailing bytes", q.Len())
	}
	return msg
}

// TestGoldenRequests checks field-level parse results and byte-exact raw
// re-encoding of checked-in HTTP/1.1 request bytes.
func TestGoldenRequests(t *testing.T) {
	cases := []struct {
		file       string
		method     string
		uri        string
		version    string
		body       string
		keepAlive  int64
		hostHeader string
	}{
		{"get_request.http", "GET", "/index.html", "HTTP/1.1", "", 1, "www.example.com"},
		{"post_request.http", "POST", "/submit", "HTTP/1.1", "field1=value1&field2=value2", 1, "www.example.com"},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			raw := golden(t, tc.file)
			msg := decodeGolden(t, RequestFormat{}, raw)
			defer msg.Release()
			if got := msg.Field("method").AsString(); got != tc.method {
				t.Errorf("method = %q, want %q", got, tc.method)
			}
			if got := msg.Field("uri").AsString(); got != tc.uri {
				t.Errorf("uri = %q, want %q", got, tc.uri)
			}
			if got := msg.Field("version").AsString(); got != tc.version {
				t.Errorf("version = %q, want %q", got, tc.version)
			}
			if got := msg.Field("body").AsString(); got != tc.body {
				t.Errorf("body = %q, want %q", got, tc.body)
			}
			if got := msg.Field("content_length").AsInt(); got != int64(len(tc.body)) {
				t.Errorf("content_length = %d, want %d", got, len(tc.body))
			}
			if got := msg.Field("keep_alive").AsInt(); got != tc.keepAlive {
				t.Errorf("keep_alive = %d, want %d", got, tc.keepAlive)
			}
			if got := Header(msg, "Host"); got != tc.hostHeader {
				t.Errorf("Host = %q, want %q", got, tc.hostHeader)
			}
			out, err := RequestFormat{}.Encode(nil, msg)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(out, raw) {
				t.Errorf("raw re-encode differs:\n got %q\nwant %q", out, raw)
			}
		})
	}
}

// TestGoldenResponses does the same for response bytes.
func TestGoldenResponses(t *testing.T) {
	cases := []struct {
		file      string
		status    int64
		reason    string
		version   string
		body      string
		keepAlive int64
	}{
		{"ok_response.http", 200, "OK", "HTTP/1.1", "Hello, world!", 1},
		{"close_response.http", 404, "Not Found", "HTTP/1.0", "not found", 0},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			raw := golden(t, tc.file)
			msg := decodeGolden(t, ResponseFormat{}, raw)
			defer msg.Release()
			if got := msg.Field("status").AsInt(); got != tc.status {
				t.Errorf("status = %d, want %d", got, tc.status)
			}
			if got := msg.Field("reason").AsString(); got != tc.reason {
				t.Errorf("reason = %q, want %q", got, tc.reason)
			}
			if got := msg.Field("version").AsString(); got != tc.version {
				t.Errorf("version = %q, want %q", got, tc.version)
			}
			if got := msg.Field("body").AsString(); got != tc.body {
				t.Errorf("body = %q, want %q", got, tc.body)
			}
			if got := msg.Field("keep_alive").AsInt(); got != tc.keepAlive {
				t.Errorf("keep_alive = %d, want %d", got, tc.keepAlive)
			}
			out, err := ResponseFormat{}.Encode(nil, msg)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			if !bytes.Equal(out, raw) {
				t.Errorf("raw re-encode differs:\n got %q\nwant %q", out, raw)
			}
		})
	}
}

// TestGoldenRebuildFixedPoint verifies that the rebuild encoder (raw image
// cleared) reaches a byte-exact fixed point: re-encoding its own decode
// reproduces the same bytes, and the recomputed Content-Length replaces the
// original header instead of duplicating it.
func TestGoldenRebuildFixedPoint(t *testing.T) {
	for _, file := range []string{"get_request.http", "post_request.http"} {
		t.Run(file, func(t *testing.T) {
			raw := golden(t, file)
			msg := decodeGolden(t, RequestFormat{}, raw)
			msg.SetField("_raw", value.Null) // force the rebuild path
			b1, err := RequestFormat{}.Encode(nil, msg)
			if err != nil {
				t.Fatal(err)
			}
			msg.Release()
			if n := bytes.Count(bytes.ToLower(b1), []byte("content-length")); n != 1 {
				t.Fatalf("rebuilt message has %d Content-Length headers, want 1:\n%q", n, b1)
			}
			msg2 := decodeGolden(t, RequestFormat{}, b1)
			msg2.SetField("_raw", value.Null)
			b2, err := RequestFormat{}.Encode(nil, msg2)
			if err != nil {
				t.Fatal(err)
			}
			msg2.Release()
			if !bytes.Equal(b1, b2) {
				t.Fatalf("rebuild not a fixed point:\n b1 %q\n b2 %q", b1, b2)
			}
		})
	}
}
