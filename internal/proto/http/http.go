// Package http implements a fast incremental HTTP/1.1 message codec.
//
// It is the FLICK framework's reusable HTTP grammar (§4.2): header-structured
// text formats sit outside the unit/field grammar language, so this codec is
// hand-written but implements the same grammar.WireFormat interface and
// produces the same value.Value records, making it interchangeable with
// grammar-compiled codecs in input/output tasks.
//
// Scope covers real HTTP/1.1 origins: Content-Length framing, chunked
// transfer-encoding (decoded with a zero-copy fast path for single-chunk
// bodies), status-aware bodiless responses (1xx/204/304), and the
// request-aware framing contract the shared upstream layer needs (HEAD
// responses carry a Content-Length for an entity that is never sent).
// Responses framed only by connection close have no findable end on a
// shared connection and are refused with ErrUnframeable.
package http

import (
	"errors"
	"fmt"
	"strconv"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/value"
)

// Record fields shared by requests and responses. Requests fill method/uri;
// responses fill status/reason.
var (
	// RequestDesc describes decoded HTTP requests.
	RequestDesc = value.NewRecordDesc("http.request",
		"method", "uri", "version", "headers", "body", "content_length", "keep_alive", "_raw")
	// ResponseDesc describes decoded HTTP responses.
	ResponseDesc = value.NewRecordDesc("http.response",
		"version", "status", "reason", "headers", "body", "content_length", "keep_alive", "_raw")
)

// Errors.
var (
	ErrMalformed = errors.New("http: malformed message")
	ErrTooLarge  = errors.New("http: message too large")
	// ErrUnframeable marks a response whose end cannot be found on a
	// shared connection: framed only by connection close (no
	// Content-Length, no chunked encoding) or by a protocol switch (101
	// Switching Protocols). Delivering it would silently truncate, so the
	// demultiplexer fails the shared socket loudly instead.
	ErrUnframeable = errors.New("http: response not length-delimited (unframeable on a shared connection)")
)

// MaxHeaderBytes bounds the header block.
const MaxHeaderBytes = 64 << 10

// MaxBodyBytes bounds message bodies.
const MaxBodyBytes = 16 << 20

// RequestFormat decodes/encodes HTTP requests.
type RequestFormat struct{}

// ResponseFormat decodes/encodes HTTP responses.
type ResponseFormat struct{}

// FormatName implements grammar.WireFormat.
func (RequestFormat) FormatName() string { return "http.request" }

// Desc implements grammar.WireFormat.
func (RequestFormat) Desc() *value.RecordDesc { return RequestDesc }

// NewDecoder implements grammar.WireFormat.
func (RequestFormat) NewDecoder() grammar.StreamDecoder {
	return &decoder{isRequest: true}
}

// FormatName implements grammar.WireFormat.
func (ResponseFormat) FormatName() string { return "http.response" }

// Desc implements grammar.WireFormat.
func (ResponseFormat) Desc() *value.RecordDesc { return ResponseDesc }

// NewDecoder implements grammar.WireFormat.
func (ResponseFormat) NewDecoder() grammar.StreamDecoder {
	return &decoder{isRequest: false}
}

var (
	_ grammar.WireFormat = RequestFormat{}
	_ grammar.WireFormat = ResponseFormat{}
)

// decoder incrementally assembles one message at a time.
//
// Decoding is zero-copy: the header terminator is located by peeking (no
// consumption), framing is parsed from a view of the buffered header block,
// and once the full message is buffered it is consumed as one contiguous
// refcounted view drawn from the queue's pooled chunks. Every byte field of
// the record (method, uri, headers, body, _raw) is a sub-slice of that
// view; the pooled region is released when the last task drops the record.
type decoder struct {
	isRequest bool
	// header phase
	scanned   int // resume offset for the \r\n\r\n scan
	headerEnd int // bytes of the header block incl. terminator; 0 = unknown
	// body phase
	bodyLen   int
	chunked   bool // body uses chunked transfer-encoding
	keepAlive bool
	// framebuf is reusable scratch for parsing framing of header blocks
	// that straddle queue chunks (the non-contiguous slow path).
	framebuf []byte
}

func (d *decoder) reset() {
	d.scanned = 0
	d.headerEnd = 0
	d.bodyLen = 0
	d.chunked = false
	d.keepAlive = false
}

// Decode implements grammar.StreamDecoder.
func (d *decoder) Decode(q *buffer.Queue) (value.Value, bool, error) {
	if d.headerEnd == 0 {
		end, found := scanCRLFCRLF(q, &d.scanned)
		if !found {
			if q.Len() > MaxHeaderBytes {
				d.reset()
				return value.Null, false, fmt.Errorf("%w: headers exceed %d bytes", ErrTooLarge, MaxHeaderBytes)
			}
			return value.Null, false, nil
		}
		d.headerEnd = end + 4
		head := q.Contig(d.headerEnd)
		if head == nil {
			if cap(d.framebuf) < d.headerEnd {
				d.framebuf = make([]byte, d.headerEnd)
			}
			head = d.framebuf[:d.headerEnd]
			q.PeekAt(head, 0)
		}
		f, err := parseFraming(head, d.isRequest)
		if err != nil {
			d.reset()
			return value.Null, false, err
		}
		if f.bodyLen > MaxBodyBytes {
			d.reset()
			return value.Null, false, fmt.Errorf("%w: body of %d bytes", ErrTooLarge, f.bodyLen)
		}
		d.keepAlive = f.keepAlive
		switch {
		case !d.isRequest && bodilessStatus(f.status):
			// 1xx/204/304: bodiless by rule — any Content-Length
			// describes an entity the server never sends.
		case f.chunked:
			d.chunked = true
		default:
			d.bodyLen = f.bodyLen
		}
	}
	if d.chunked {
		return d.decodeChunked(q)
	}
	total := d.headerEnd + d.bodyLen
	if q.Len() < total {
		return value.Null, false, nil
	}
	raw, ref := q.TakeRef(total)
	head := raw[:d.headerEnd]
	body := raw[d.headerEnd:]

	msg, err := buildRecord(head, body, d.isRequest, d.keepAlive, raw, ref)
	d.reset()
	if err != nil {
		ref.Release()
		return value.Null, false, err
	}
	return msg, true, nil
}

// decodeChunked completes a chunked-transfer message: the whole wire image
// (header block + chunked section through the final CRLF) is consumed as
// one view. A body of at most one data chunk stays zero-copy — the body
// field sub-slices the view between the chunk-size line and its trailing
// CRLF. A multi-chunk body is discontiguous on the wire, so the wire image
// and the stitched-together payload are copied once into a fresh pooled
// region; the record still carries the verbatim chunked wire in _raw, so
// proxy forwarding stays byte-exact.
func (d *decoder) decodeChunked(q *buffer.Queue) (value.Value, bool, error) {
	n, dataLen, chunks, err := frameChunked(q, d.headerEnd)
	if err != nil {
		d.reset()
		return value.Null, false, err
	}
	total := d.headerEnd + n
	if n == 0 || q.Len() < total {
		return value.Null, false, nil
	}
	raw, ref := q.TakeRef(total)
	head := raw[:d.headerEnd]
	var body []byte
	switch {
	case chunks > 1:
		nref := buffer.Global.GetRef(total + dataLen)
		nb := nref.Bytes()
		copy(nb, raw)
		dechunkInto(nb[total:total+dataLen], raw[d.headerEnd:])
		ref.Release()
		ref = nref
		raw = nb[:total]
		head = raw[:d.headerEnd]
		body = nb[total : total+dataLen]
	case chunks == 1:
		_, rest := splitLine(raw[d.headerEnd:])
		body = rest[:dataLen]
	}
	msg, err := buildRecord(head, body, d.isRequest, d.keepAlive, raw, ref)
	d.reset()
	if err != nil {
		ref.Release()
		return value.Null, false, err
	}
	return msg, true, nil
}

// dechunkInto stitches the payloads of a complete, already-validated
// chunked section src into dst (len(dst) must equal the payload total).
func dechunkInto(dst, src []byte) {
	for {
		line, rest := splitLine(src)
		size := chunkSizeOf(line)
		if size == 0 {
			return
		}
		n := copy(dst, rest[:size])
		dst = dst[n:]
		src = rest[size+2:]
	}
}

// chunkSizeOf parses the leading hex digits of a chunk-size line that
// frameChunked has already validated.
func chunkSizeOf(line []byte) int {
	n := 0
	for _, b := range line {
		switch {
		case b >= '0' && b <= '9':
			n = n<<4 | int(b-'0')
		case b >= 'a' && b <= 'f':
			n = n<<4 | int(b-'a'+10)
		case b >= 'A' && b <= 'F':
			n = n<<4 | int(b-'A'+10)
		default:
			return n
		}
	}
	return n
}

// bodilessStatus reports the response statuses RFC 7230 §3.3.3 defines as
// never carrying a body, whatever their headers declare.
func bodilessStatus(status int) bool {
	return (status >= 100 && status < 200) || status == 204 || status == 304
}

// scanCRLFCRLF looks for the header terminator, resuming from *scanned.
func scanCRLFCRLF(q *buffer.Queue, scanned *int) (int, bool) {
	from := *scanned
	for {
		i := q.IndexByte('\r', from)
		if i < 0 || i+3 >= q.Len() {
			if i < 0 {
				*scanned = maxInt(0, q.Len()-3)
			} else {
				*scanned = i
			}
			return 0, false
		}
		b1, _ := q.PeekByte(i + 1)
		b2, _ := q.PeekByte(i + 2)
		b3, _ := q.PeekByte(i + 3)
		if b1 == '\n' && b2 == '\r' && b3 == '\n' {
			return i, true
		}
		from = i + 1
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// framing is the message-framing summary parseFraming extracts from one
// header block.
type framing struct {
	status    int  // response status code (0 for requests or unparsable lines)
	bodyLen   int  // declared Content-Length (0 when absent)
	hasCL     bool // an explicit Content-Length header was present
	chunked   bool // Transfer-Encoding: chunked
	keepAlive bool
}

// parseFraming extracts body framing and keep-alive from a header block.
// Duplicate Content-Length headers — and Content-Length combined with
// chunked transfer-encoding — are rejected with ErrMalformed per RFC 7230
// §3.3.3: forwarding either is a request-smuggling vector, so a proxy must
// refuse the message rather than pick a winner.
func parseFraming(head []byte, isRequest bool) (framing, error) {
	var f framing
	// Default keep-alive per HTTP/1.1; HTTP/1.0 defaults to close.
	line, rest := splitLine(head)
	f.keepAlive = !containsToken(line, []byte("HTTP/1.0"))
	if !isRequest {
		f.status = parseStatus(line)
	}
	for len(rest) > 0 {
		line, rest = splitLine(rest)
		if len(line) == 0 {
			break
		}
		name, val := splitHeader(line)
		switch {
		case asciiEqualFold(name, []byte("content-length")):
			n, perr := strconv.Atoi(string(trimSpace(val)))
			if perr != nil || n < 0 {
				return framing{}, fmt.Errorf("%w: bad content-length %q", ErrMalformed, val)
			}
			if f.hasCL {
				return framing{}, fmt.Errorf("%w: duplicate content-length", ErrMalformed)
			}
			f.hasCL, f.bodyLen = true, n
		case asciiEqualFold(name, []byte("connection")):
			// Connection is a token list ("close, TE"): match tokens, not
			// the whole folded value, or a close marker travelling with
			// other options fails to disable keep-alive.
			if containsToken(val, []byte("close")) {
				f.keepAlive = false
			} else if containsToken(val, []byte("keep-alive")) {
				f.keepAlive = true
			}
		case asciiEqualFold(name, []byte("transfer-encoding")):
			if containsToken(val, []byte("chunked")) {
				f.chunked = true
			}
		}
	}
	if f.chunked && f.hasCL {
		return framing{}, fmt.Errorf("%w: content-length with chunked transfer-encoding", ErrMalformed)
	}
	return f, nil
}

// parseStatus parses the status code from a response start line (0 when
// the line does not carry one).
func parseStatus(line []byte) int {
	p := indexByte(line, ' ')
	if p < 0 {
		return 0
	}
	n, digits := 0, 0
	for _, b := range line[p+1:] {
		if b == ' ' {
			break
		}
		if b < '0' || b > '9' {
			return 0
		}
		n = n*10 + int(b-'0')
		if digits++; digits > 4 {
			return 0
		}
	}
	if digits == 0 {
		return 0
	}
	return n
}

// buildRecord constructs the value record for a complete message. All byte
// fields alias raw; the record owns the caller's reference to ref and
// releases it (recycling the pooled wire bytes) when the last holder drops
// the message. On error the caller keeps its reference.
func buildRecord(head, body []byte, isRequest, keepAlive bool, raw []byte, ref *buffer.Ref) (value.Value, error) {
	start, rest := splitLine(head)
	p1 := indexByte(start, ' ')
	if p1 < 0 {
		return value.Null, fmt.Errorf("%w: start line %q", ErrMalformed, start)
	}
	p2 := indexByte(start[p1+1:], ' ')
	if p2 < 0 {
		return value.Null, fmt.Errorf("%w: start line %q", ErrMalformed, start)
	}
	p2 += p1 + 1
	a, b, c := start[:p1], start[p1+1:p2], start[p2+1:]

	ka := int64(0)
	if keepAlive {
		ka = 1
	}
	// Headers block excludes the start line and the final CRLF pair.
	headers := rest
	if len(headers) >= 2 {
		headers = headers[:len(headers)-2]
	}

	var region value.Region
	if ref != nil {
		region = ref
	}
	if isRequest {
		rec := RequestDesc.NewOwned(region)
		rec.L[0] = value.Bytes(a) // method
		rec.L[1] = value.Bytes(b) // uri
		rec.L[2] = value.Bytes(c) // version
		rec.L[3] = value.Bytes(headers)
		rec.L[4] = value.Bytes(body)
		rec.L[5] = value.Int(int64(len(body)))
		rec.L[6] = value.Int(ka)
		rec.L[7] = value.Bytes(raw)
		return rec, nil
	}
	status, err := strconv.Atoi(string(b))
	if err != nil {
		return value.Null, fmt.Errorf("%w: status %q", ErrMalformed, b)
	}
	rec := ResponseDesc.NewOwned(region)
	rec.L[0] = value.Bytes(a) // version
	rec.L[1] = value.Int(int64(status))
	rec.L[2] = value.Bytes(c) // reason
	rec.L[3] = value.Bytes(headers)
	rec.L[4] = value.Bytes(body)
	rec.L[5] = value.Int(int64(len(body)))
	rec.L[6] = value.Int(ka)
	rec.L[7] = value.Bytes(raw)
	return rec, nil
}

// Encode implements grammar.WireFormat for requests. When the record carries
// a raw image and has not been rebuilt, the raw bytes are emitted verbatim
// (the paper's "copied in their wire format representation" fast path).
func (RequestFormat) Encode(dst []byte, msg value.Value) ([]byte, error) {
	return encode(dst, msg, RequestDesc)
}

// Encode implements grammar.WireFormat for responses.
func (ResponseFormat) Encode(dst []byte, msg value.Value) ([]byte, error) {
	return encode(dst, msg, ResponseDesc)
}

// EncodeScatter implements grammar.ScatterEncoder for requests: messages
// with an intact raw image are appended by reference into their pooled
// region; rebuilt messages are serialised through scratch and copied.
func (RequestFormat) EncodeScatter(sc *buffer.Scatter, scratch []byte, msg value.Value) ([]byte, error) {
	return encodeScatter(sc, scratch, msg, RequestDesc)
}

// EncodeScatter implements grammar.ScatterEncoder for responses.
func (ResponseFormat) EncodeScatter(sc *buffer.Scatter, scratch []byte, msg value.Value) ([]byte, error) {
	return encodeScatter(sc, scratch, msg, ResponseDesc)
}

func encodeScatter(sc *buffer.Scatter, scratch []byte, msg value.Value, desc *value.RecordDesc) ([]byte, error) {
	if msg.Kind != value.KindRecord || msg.R != desc {
		return scratch, fmt.Errorf("%w: encode of %v with %s codec", ErrMalformed, msg.Kind, desc.Name)
	}
	if raw := msg.Field("_raw"); !raw.IsNull() {
		sc.AppendRef(raw.B, msg.O)
		return scratch, nil
	}
	out, err := encode(scratch[:0], msg, desc)
	if err != nil {
		return out, err
	}
	sc.Append(out)
	return out, nil
}

var (
	_ grammar.ScatterEncoder = RequestFormat{}
	_ grammar.ScatterEncoder = ResponseFormat{}
)

func encode(dst []byte, msg value.Value, desc *value.RecordDesc) ([]byte, error) {
	if msg.Kind != value.KindRecord || msg.R != desc {
		return dst, fmt.Errorf("%w: encode of %v with %s codec", ErrMalformed, msg.Kind, desc.Name)
	}
	if raw := msg.Field("_raw"); !raw.IsNull() {
		return append(dst, raw.B...), nil
	}
	body := msg.Field("body").AsBytes()
	version := msg.Field("version").AsBytes()
	if len(version) == 0 {
		version = []byte("HTTP/1.1") // default for program-built messages
	}
	if desc == RequestDesc {
		dst = append(dst, msg.Field("method").AsBytes()...)
		dst = append(dst, ' ')
		dst = append(dst, msg.Field("uri").AsBytes()...)
		dst = append(dst, ' ')
		dst = append(dst, version...)
	} else {
		dst = append(dst, version...)
		dst = append(dst, ' ')
		dst = strconv.AppendInt(dst, msg.Field("status").AsInt(), 10)
		dst = append(dst, ' ')
		reason := msg.Field("reason").AsBytes()
		if len(reason) == 0 {
			reason = statusReason(int(msg.Field("status").AsInt()))
		}
		dst = append(dst, reason...)
	}
	dst = append(dst, '\r', '\n')
	// Emit the headers block minus any Content-Length or
	// Transfer-Encoding line: the encoder Content-Length-frames the
	// current body, so a stale Content-Length would duplicate and a stale
	// "chunked" marker would contradict the emitted framing (the decoded
	// body is already de-chunked).
	if h := msg.Field("headers").AsBytes(); len(h) > 0 {
		block := h
		for len(block) > 0 {
			var line []byte
			line, block = splitLine(block)
			name, _ := splitHeader(line)
			if asciiEqualFold(name, []byte("content-length")) ||
				asciiEqualFold(name, []byte("transfer-encoding")) {
				continue
			}
			dst = append(dst, line...)
			dst = append(dst, '\r', '\n')
		}
	}
	dst = append(dst, []byte("Content-Length: ")...)
	dst = strconv.AppendInt(dst, int64(len(body)), 10)
	dst = append(dst, '\r', '\n', '\r', '\n')
	dst = append(dst, body...)
	return dst, nil
}

// statusReason supplies a default reason phrase.
func statusReason(status int) []byte {
	switch status {
	case 200:
		return []byte("OK")
	case 404:
		return []byte("Not Found")
	case 500:
		return []byte("Internal Server Error")
	case 502:
		return []byte("Bad Gateway")
	default:
		return []byte("Status")
	}
}

// Header returns the value of the named header within a decoded message's
// headers block ("" when absent). Matching is case-insensitive.
func Header(msg value.Value, name string) string {
	v, ok := HeaderBytes(msg, name)
	if !ok {
		return ""
	}
	return string(v)
}

// HeaderBytes returns the named header's trimmed value as a zero-copy view
// into the decoded message's header block, and whether the header is
// present — the allocation-free counterpart of Header for hot paths. The
// view is valid only while the message is.
func HeaderBytes(msg value.Value, name string) ([]byte, bool) {
	block := msg.Field("headers").AsBytes()
	for len(block) > 0 {
		var line []byte
		line, block = splitLine(block)
		n, v := splitHeader(line)
		if asciiEqualFoldStr(n, name) {
			return trimSpace(v), true
		}
	}
	return nil, false
}

// --- small byte helpers (kept local to avoid bytes import in hot paths) ---

func splitLine(b []byte) (line, rest []byte) {
	for i := 0; i+1 < len(b); i++ {
		if b[i] == '\r' && b[i+1] == '\n' {
			return b[:i], b[i+2:]
		}
	}
	return b, nil
}

func splitHeader(line []byte) (name, val []byte) {
	i := indexByte(line, ':')
	if i < 0 {
		return line, nil
	}
	return line[:i], line[i+1:]
}

func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

func asciiLower(c byte) byte {
	if 'A' <= c && c <= 'Z' {
		return c + 'a' - 'A'
	}
	return c
}

func asciiEqualFold(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if asciiLower(a[i]) != asciiLower(b[i]) {
			return false
		}
	}
	return true
}

// asciiEqualFoldStr is asciiEqualFold against a string, so callers with a
// string name (including substrings of a larger rule string) never pay a
// []byte conversion allocation.
func asciiEqualFoldStr(a []byte, s string) bool {
	if len(a) != len(s) {
		return false
	}
	for i := range a {
		if asciiLower(a[i]) != asciiLower(s[i]) {
			return false
		}
	}
	return true
}

// containsToken reports whether the comma- or space-separated list hay
// contains needle as a WHOLE token, ASCII case-insensitively. Substring
// matching would be wrong twice over: "Connection: disclosed" must not
// read as close, and "keep-alive-ish" must not read as keep-alive.
func containsToken(hay, needle []byte) bool {
	if len(needle) == 0 {
		return false
	}
	for i := 0; i < len(hay); {
		for i < len(hay) && (hay[i] == ',' || hay[i] == ' ' || hay[i] == '\t') {
			i++
		}
		start := i
		for i < len(hay) && hay[i] != ',' && hay[i] != ' ' && hay[i] != '\t' {
			i++
		}
		if asciiEqualFold(hay[start:i], needle) {
			return true
		}
	}
	return false
}

// ProbeRequest returns the wire bytes of a body-less `OPTIONS *` request —
// the lightweight liveness probe the shared upstream layer round-trips
// against HTTP backends (upstream.Config.Probe). OPTIONS responses are
// Content-Length framed, so FrameRequestLen/FrameResponseLen handle it
// like any pooled request.
func ProbeRequest() []byte {
	return BuildRequest(nil, "OPTIONS", "*", "probe", true, nil)
}

// BuildRequest appends a complete HTTP/1.1 request (start line, Host,
// Connection and Content-Length headers, body) to dst and returns it —
// the raw-bytes twin of RequestFormat.Encode for clients and tests.
func BuildRequest(dst []byte, method, uri, host string, keepAlive bool, body []byte) []byte {
	dst = append(dst, method...)
	dst = append(dst, ' ')
	dst = append(dst, uri...)
	dst = append(dst, " HTTP/1.1\r\nHost: "...)
	dst = append(dst, host...)
	dst = append(dst, '\r', '\n')
	if !keepAlive {
		dst = append(dst, "Connection: close\r\n"...)
	}
	if len(body) > 0 {
		dst = append(dst, "Content-Length: "...)
		dst = strconv.AppendInt(dst, int64(len(body)), 10)
		dst = append(dst, '\r', '\n')
	}
	dst = append(dst, '\r', '\n')
	dst = append(dst, body...)
	return dst
}

// BuildNotModified renders a minimal 304 Not Modified carrying the given
// validators (either may be empty) — the response a cache synthesizes for
// a conditional request whose validators match a stored entry. 304 is a
// bodiless status (the decoder's bodilessStatus set), so no framing
// headers are emitted.
func BuildNotModified(dst []byte, etag, lastMod []byte) []byte {
	dst = append(dst, "HTTP/1.1 304 Not Modified\r\n"...)
	if len(etag) > 0 {
		dst = append(dst, "ETag: "...)
		dst = append(dst, etag...)
		dst = append(dst, '\r', '\n')
	}
	if len(lastMod) > 0 {
		dst = append(dst, "Last-Modified: "...)
		dst = append(dst, lastMod...)
		dst = append(dst, '\r', '\n')
	}
	return append(dst, '\r', '\n')
}

// BuildConditionalGet renders the upstream revalidation request for a
// cached entry: a keep-alive GET carrying If-None-Match when an entity tag
// is known (the stronger validator wins), If-Modified-Since otherwise, or
// neither — a plain background refresh — when the entry stored no
// validators.
func BuildConditionalGet(dst []byte, uri, host, etag, lastMod []byte) []byte {
	dst = append(dst, "GET "...)
	dst = append(dst, uri...)
	dst = append(dst, " HTTP/1.1\r\nHost: "...)
	dst = append(dst, host...)
	dst = append(dst, '\r', '\n')
	if len(etag) > 0 {
		dst = append(dst, "If-None-Match: "...)
		dst = append(dst, etag...)
		dst = append(dst, '\r', '\n')
	} else if len(lastMod) > 0 {
		dst = append(dst, "If-Modified-Since: "...)
		dst = append(dst, lastMod...)
		dst = append(dst, '\r', '\n')
	}
	return append(dst, '\r', '\n')
}

// BuildResponse renders a 200 response with the given body (backend helper).
func BuildResponse(dst []byte, status int, reason string, keepAlive bool, body []byte) []byte {
	dst = append(dst, "HTTP/1.1 "...)
	dst = strconv.AppendInt(dst, int64(status), 10)
	dst = append(dst, ' ')
	dst = append(dst, reason...)
	dst = append(dst, '\r', '\n')
	if !keepAlive {
		dst = append(dst, "Connection: close\r\n"...)
	}
	dst = append(dst, "Content-Length: "...)
	dst = strconv.AppendInt(dst, int64(len(body)), 10)
	dst = append(dst, "\r\n\r\n"...)
	dst = append(dst, body...)
	return dst
}
