package http

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"flick/internal/buffer"
	"flick/internal/value"
)

func TestDecodeSimpleRequest(t *testing.T) {
	wire := []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := RequestFormat{}.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if msg.Field("method").AsString() != "GET" {
		t.Fatalf("method = %q", msg.Field("method").AsString())
	}
	if msg.Field("uri").AsString() != "/index.html" {
		t.Fatalf("uri = %q", msg.Field("uri").AsString())
	}
	if msg.Field("version").AsString() != "HTTP/1.1" {
		t.Fatalf("version = %q", msg.Field("version").AsString())
	}
	if msg.Field("keep_alive").AsInt() != 1 {
		t.Fatal("HTTP/1.1 should default to keep-alive")
	}
	if msg.Field("content_length").AsInt() != 0 {
		t.Fatal("no body expected")
	}
	if Header(msg, "host") != "example.com" {
		t.Fatalf("Host = %q", Header(msg, "host"))
	}
	if !bytes.Equal(msg.Field("_raw").AsBytes(), wire) {
		t.Fatal("raw image mismatch")
	}
}

func TestDecodeRequestWithBody(t *testing.T) {
	wire := []byte("POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := RequestFormat{}.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if msg.Field("body").AsString() != "hello" {
		t.Fatalf("body = %q", msg.Field("body").AsString())
	}
}

func TestDecodeIncrementalAcrossReads(t *testing.T) {
	wire := []byte("GET /a HTTP/1.1\r\nHost: h\r\nContent-Length: 3\r\n\r\nxyz")
	q := buffer.NewQueue(nil)
	dec := RequestFormat{}.NewDecoder()
	for i := 0; i < len(wire); i++ {
		q.Append(wire[i : i+1])
		msg, ok, err := dec.Decode(q)
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if ok != (i == len(wire)-1) {
			t.Fatalf("byte %d: ok=%v", i, ok)
		}
		if ok && msg.Field("body").AsString() != "xyz" {
			t.Fatal("body mismatch")
		}
	}
}

func TestDecodePipelinedRequests(t *testing.T) {
	var wire []byte
	wire = append(wire, "GET /1 HTTP/1.1\r\n\r\n"...)
	wire = append(wire, "GET /2 HTTP/1.1\r\n\r\n"...)
	q := buffer.NewQueue(nil)
	q.Append(wire)
	dec := RequestFormat{}.NewDecoder()
	for _, want := range []string{"/1", "/2"} {
		msg, ok, err := dec.Decode(q)
		if !ok || err != nil {
			t.Fatalf("decode %s: %v %v", want, ok, err)
		}
		if msg.Field("uri").AsString() != want {
			t.Fatalf("uri = %q", msg.Field("uri").AsString())
		}
	}
}

func TestDecodeResponse(t *testing.T) {
	wire := BuildResponse(nil, 200, "OK", true, []byte("payload"))
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := ResponseFormat{}.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if msg.Field("status").AsInt() != 200 {
		t.Fatalf("status = %d", msg.Field("status").AsInt())
	}
	if msg.Field("reason").AsString() != "OK" {
		t.Fatalf("reason = %q", msg.Field("reason").AsString())
	}
	if msg.Field("body").AsString() != "payload" {
		t.Fatalf("body = %q", msg.Field("body").AsString())
	}
}

func TestConnectionCloseDetected(t *testing.T) {
	wire := []byte("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, _, _ := RequestFormat{}.NewDecoder().Decode(q)
	if msg.Field("keep_alive").AsInt() != 0 {
		t.Fatal("Connection: close not honoured")
	}
}

func TestHTTP10DefaultsToClose(t *testing.T) {
	wire := []byte("GET / HTTP/1.0\r\n\r\n")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, _, _ := RequestFormat{}.NewDecoder().Decode(q)
	if msg.Field("keep_alive").AsInt() != 0 {
		t.Fatal("HTTP/1.0 should default to close")
	}
	wire = []byte("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
	q.Append(wire)
	msg, _, _ = RequestFormat{}.NewDecoder().Decode(q)
	if msg.Field("keep_alive").AsInt() != 1 {
		t.Fatal("explicit keep-alive should override HTTP/1.0 default")
	}
}

func TestChunkedDecodeSingleChunk(t *testing.T) {
	wire := []byte("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nhello\r\n0\r\n\r\n")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, ok, err := RequestFormat{}.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if msg.Field("body").AsString() != "hello" {
		t.Fatalf("body = %q", msg.Field("body").AsString())
	}
	if !bytes.Equal(msg.Field("_raw").AsBytes(), wire) {
		t.Fatal("raw image is not the verbatim chunked wire")
	}
	msg.Release()
}

func TestChunkedDecodeMultiChunk(t *testing.T) {
	wire := []byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"5\r\nhello\r\n7\r\n, world\r\n0\r\nX-Trailer: t\r\n\r\n")
	q := buffer.NewQueue(nil)
	dec := ResponseFormat{}.NewDecoder()
	// Trickle to exercise the incremental chunk scan.
	for i := 0; i < len(wire); i += 11 {
		end := i + 11
		if end > len(wire) {
			end = len(wire)
		}
		q.Append(wire[i:end])
		msg, ok, err := dec.Decode(q)
		if err != nil {
			t.Fatalf("after %d bytes: %v", end, err)
		}
		if ok != (end == len(wire)) {
			t.Fatalf("after %d bytes: ok=%v", end, ok)
		}
		if !ok {
			continue
		}
		if msg.Field("body").AsString() != "hello, world" {
			t.Fatalf("stitched body = %q", msg.Field("body").AsString())
		}
		// The raw image stays the verbatim chunked wire so proxy
		// passthrough re-emits exactly what the origin sent.
		if !bytes.Equal(msg.Field("_raw").AsBytes(), wire) {
			t.Fatal("raw image is not the verbatim chunked wire")
		}
		msg.Release()
	}
}

// TestDuplicateContentLengthRejected pins the RFC 7230 §3.3.3 smuggling
// guards: conflicting length claims never pick one silently.
func TestDuplicateContentLengthRejected(t *testing.T) {
	for _, wire := range []string{
		"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 6\r\n\r\nhello",
		"POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 5\r\n\r\nhello",
		"POST / HTTP/1.1\r\nContent-Length: 5\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
	} {
		q := buffer.NewQueue(nil)
		q.Append([]byte(wire))
		_, ok, err := RequestFormat{}.NewDecoder().Decode(q)
		if ok || !errors.Is(err, ErrMalformed) {
			t.Fatalf("%q: ok=%v err=%v; want ErrMalformed", wire[:40], ok, err)
		}
	}
}

// TestConnectionTokenList: Connection is a comma-separated token list —
// "close" must match as a token, not as a substring.
func TestConnectionTokenList(t *testing.T) {
	for wire, wantKA := range map[string]int64{
		"GET / HTTP/1.1\r\nConnection: close, TE\r\n\r\n":      0,
		"GET / HTTP/1.1\r\nConnection: TE ,Close\r\n\r\n":      0,
		"GET / HTTP/1.1\r\nConnection: disclosed\r\n\r\n":      1,
		"GET / HTTP/1.0\r\nConnection: TE, keep-alive\r\n\r\n": 1,
		"GET / HTTP/1.0\r\nConnection: keep-alive-ish\r\n\r\n": 0,
	} {
		q := buffer.NewQueue(nil)
		q.Append([]byte(wire))
		msg, ok, err := RequestFormat{}.NewDecoder().Decode(q)
		if !ok || err != nil {
			t.Fatalf("%q: ok=%v err=%v", wire, ok, err)
		}
		if msg.Field("keep_alive").AsInt() != wantKA {
			t.Fatalf("%q: keep_alive = %d; want %d", wire, msg.Field("keep_alive").AsInt(), wantKA)
		}
	}
}

func TestBadContentLength(t *testing.T) {
	wire := []byte("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	_, ok, err := RequestFormat{}.NewDecoder().Decode(q)
	if ok || !errors.Is(err, ErrMalformed) {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestMalformedStartLine(t *testing.T) {
	wire := []byte("NONSENSE\r\n\r\n")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	_, ok, err := RequestFormat{}.NewDecoder().Decode(q)
	if ok || !errors.Is(err, ErrMalformed) {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestHeaderTooLarge(t *testing.T) {
	q := buffer.NewQueue(nil)
	q.Append([]byte("GET / HTTP/1.1\r\n"))
	big := bytes.Repeat([]byte("X-Filler: aaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n"), 4000)
	q.Append(big)
	_, ok, err := RequestFormat{}.NewDecoder().Decode(q)
	if ok || !errors.Is(err, ErrTooLarge) {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestEncodeRawPassthrough(t *testing.T) {
	wire := []byte("GET /x HTTP/1.1\r\nHost: h\r\n\r\n")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, _, _ := RequestFormat{}.NewDecoder().Decode(q)
	out, err := RequestFormat{}.Encode(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, wire) {
		t.Fatalf("passthrough differs:\n%q\n%q", wire, out)
	}
}

func TestEncodeRebuiltRequest(t *testing.T) {
	rec := RequestDesc.New()
	rec.SetField("method", value.Str("GET"))
	rec.SetField("uri", value.Str("/p"))
	rec.SetField("version", value.Str("HTTP/1.1"))
	rec.SetField("headers", value.Str("Host: h"))
	rec.SetField("body", value.Bytes(nil))
	out, err := RequestFormat{}.Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	q := buffer.NewQueue(nil)
	q.Append(out)
	msg, ok, err := RequestFormat{}.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatalf("re-decode: %v %v (%q)", ok, err, out)
	}
	if msg.Field("uri").AsString() != "/p" || Header(msg, "Host") != "h" {
		t.Fatalf("rebuilt request wrong: %q", out)
	}
}

func TestEncodeRebuiltResponse(t *testing.T) {
	rec := ResponseDesc.New()
	rec.SetField("version", value.Str("HTTP/1.1"))
	rec.SetField("status", value.Int(404))
	rec.SetField("reason", value.Str("Not Found"))
	rec.SetField("body", value.Bytes([]byte("gone")))
	out, err := ResponseFormat{}.Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	q := buffer.NewQueue(nil)
	q.Append(out)
	msg, ok, err := ResponseFormat{}.NewDecoder().Decode(q)
	if !ok || err != nil {
		t.Fatal(ok, err)
	}
	if msg.Field("status").AsInt() != 404 || msg.Field("body").AsString() != "gone" {
		t.Fatalf("rebuilt response wrong: %q", out)
	}
}

func TestEncodeWrongRecord(t *testing.T) {
	if _, err := (RequestFormat{}).Encode(nil, value.Int(1)); err == nil {
		t.Fatal("encoded an int")
	}
	if _, err := (ResponseFormat{}).Encode(nil, RequestDesc.New()); err == nil {
		t.Fatal("encoded a request with the response codec")
	}
}

func TestHeaderLookupMissing(t *testing.T) {
	wire := []byte("GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\n\r\n")
	q := buffer.NewQueue(nil)
	q.Append(wire)
	msg, _, _ := RequestFormat{}.NewDecoder().Decode(q)
	if Header(msg, "C") != "" {
		t.Fatal("missing header returned a value")
	}
	if Header(msg, "a") != "1" || Header(msg, "B") != "2" {
		t.Fatal("header lookup failed")
	}
}

func TestBuildRequestVariants(t *testing.T) {
	r := BuildRequest(nil, "GET", "/u", "host", true, nil)
	if bytes.Contains(r, []byte("Connection: close")) {
		t.Fatal("keep-alive request has close header")
	}
	r = BuildRequest(nil, "GET", "/u", "host", false, nil)
	if !bytes.Contains(r, []byte("Connection: close")) {
		t.Fatal("non-persistent request missing close header")
	}
	r = BuildRequest(nil, "POST", "/u", "host", true, []byte("abc"))
	if !bytes.Contains(r, []byte("Content-Length: 3")) {
		t.Fatal("POST missing content length")
	}
}

// Property: BuildRequest output always decodes back to the same method/uri
// and body for header-safe inputs.
func TestBuildRequestRoundTripProperty(t *testing.T) {
	f := func(pathSeed uint32, body []byte, ka bool) bool {
		if len(body) > 4096 {
			return true
		}
		uri := "/p" + string(rune('a'+pathSeed%26))
		wire := BuildRequest(nil, "POST", uri, "h", ka, body)
		q := buffer.NewQueue(nil)
		q.Append(wire)
		msg, ok, err := RequestFormat{}.NewDecoder().Decode(q)
		if !ok || err != nil {
			return false
		}
		return msg.Field("uri").AsString() == uri &&
			bytes.Equal(msg.Field("body").AsBytes(), body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDecodeRequest(b *testing.B) {
	wire := []byte("GET /index.html HTTP/1.1\r\nHost: example.com\r\nUser-Agent: ab\r\nAccept: */*\r\n\r\n")
	q := buffer.NewQueue(nil)
	dec := RequestFormat{}.NewDecoder()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Append(wire)
		if _, ok, err := dec.Decode(q); !ok || err != nil {
			b.Fatal(ok, err)
		}
	}
}
