package http

import (
	"strconv"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/value"
)

// PersistentRequestFormat encodes requests like RequestFormat but forces
// keep-alive on the wire. Middleboxes writing client requests onto a shared
// upstream connection must not forward a client's "Connection: close" — the
// backend would honour it and tear down the pooled socket under every other
// client multiplexed onto it (Connection is a hop-by-hop header; a proxy
// owns its own backend connection lifecycle). Already-persistent requests
// take the zero-copy raw fast path unchanged; close-marked requests are
// rebuilt with the Connection headers stripped and keep-alive asserted.
type PersistentRequestFormat struct{}

// FormatName implements grammar.WireFormat.
func (PersistentRequestFormat) FormatName() string { return "http.request+keepalive" }

// Desc implements grammar.WireFormat.
func (PersistentRequestFormat) Desc() *value.RecordDesc { return RequestDesc }

// NewDecoder implements grammar.WireFormat (decoding is unchanged).
func (PersistentRequestFormat) NewDecoder() grammar.StreamDecoder {
	return RequestFormat{}.NewDecoder()
}

// Encode implements grammar.WireFormat.
func (PersistentRequestFormat) Encode(dst []byte, msg value.Value) ([]byte, error) {
	if isPersistent(msg) {
		return encode(dst, msg, RequestDesc)
	}
	return encodeKeepAlive(dst, msg)
}

// EncodeScatter implements grammar.ScatterEncoder.
func (PersistentRequestFormat) EncodeScatter(sc *buffer.Scatter, scratch []byte, msg value.Value) ([]byte, error) {
	if isPersistent(msg) {
		return encodeScatter(sc, scratch, msg, RequestDesc)
	}
	out, err := encodeKeepAlive(scratch[:0], msg)
	if err != nil {
		return out, err
	}
	sc.Append(out)
	return out, nil
}

func isPersistent(msg value.Value) bool {
	return msg.Field("keep_alive").AsInt() == 1
}

// encodeKeepAlive rebuilds a request with hop-by-hop Connection headers
// dropped and keep-alive asserted. It mirrors encode()'s rebuild path (which
// already recomputes Content-Length), so decode→encode stays a fixed point
// modulo the rewritten Connection header.
func encodeKeepAlive(dst []byte, msg value.Value) ([]byte, error) {
	body := msg.Field("body").AsBytes()
	version := msg.Field("version").AsBytes()
	if len(version) == 0 {
		version = []byte("HTTP/1.1")
	}
	dst = append(dst, msg.Field("method").AsBytes()...)
	dst = append(dst, ' ')
	dst = append(dst, msg.Field("uri").AsBytes()...)
	dst = append(dst, ' ')
	dst = append(dst, version...)
	dst = append(dst, '\r', '\n')
	if h := msg.Field("headers").AsBytes(); len(h) > 0 {
		block := h
		for len(block) > 0 {
			var line []byte
			line, block = splitLine(block)
			name, _ := splitHeader(line)
			if asciiEqualFold(name, []byte("content-length")) ||
				asciiEqualFold(name, []byte("transfer-encoding")) ||
				asciiEqualFold(name, []byte("connection")) {
				continue
			}
			dst = append(dst, line...)
			dst = append(dst, '\r', '\n')
		}
	}
	dst = append(dst, []byte("Connection: keep-alive\r\nContent-Length: ")...)
	dst = strconv.AppendInt(dst, int64(len(body)), 10)
	dst = append(dst, '\r', '\n', '\r', '\n')
	dst = append(dst, body...)
	return dst, nil
}

var (
	_ grammar.WireFormat     = PersistentRequestFormat{}
	_ grammar.ScatterEncoder = PersistentRequestFormat{}
)
