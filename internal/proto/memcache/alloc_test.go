package memcache

import (
	"testing"

	"flick/internal/buffer"
)

// TestDecodeEncodeZeroAlloc is the alloc-regression gate for the Memcached
// hot path: a binary-protocol command arriving in a pooled chunk is parsed
// in place by the compiled grammar, forwarded through a retain/release
// cycle, re-encoded into a pooled scatter list via the raw fast path, and
// recycled — zero heap allocations per message in steady state.
func TestDecodeEncodeZeroAlloc(t *testing.T) {
	req := Request(OpGetK, []byte("key-000042"), nil)
	wire, err := Codec.Encode(nil, req)
	if err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(64)
	pool.Prime(8)
	q := buffer.NewQueue(pool)
	dec := Codec.NewDecoder()
	sc := buffer.NewScatter(pool)
	var scratch []byte
	var sink int64

	allocs := testing.AllocsPerRun(1000, func() {
		ref := pool.GetRef(len(wire))
		copy(ref.Bytes(), wire)
		q.AppendRef(ref, len(wire))
		msg, ok, derr := dec.Decode(q)
		if derr != nil || !ok {
			t.Fatalf("decode failed: ok=%v err=%v", ok, derr)
		}
		msg.Retain() // graph hop: channel retains, producer releases
		msg.Release()
		sink += msg.Field("opcode").AsInt()
		scratch, derr = Codec.EncodeScatter(sc, scratch, msg)
		if derr != nil {
			t.Fatalf("encode failed: %v", derr)
		}
		msg.Release()
		if sc.Len() != len(wire) {
			t.Fatalf("scatter holds %d bytes, want %d", sc.Len(), len(wire))
		}
		sc.Reset()
	})
	if allocs != 0 {
		t.Fatalf("Memcached decode→encode round trip allocates %.1f/op, want 0", allocs)
	}

	s := pool.Stats()
	if s.Oversized != 0 {
		t.Fatalf("hot path hit the over-MaxClass fallback %d times", s.Oversized)
	}
	if s.Coalesced != 0 {
		t.Fatalf("single-chunk messages coalesced %d times", s.Coalesced)
	}
	if s.RefGets != s.RefPuts {
		t.Fatalf("region leak: %d handed out, %d recycled", s.RefGets, s.RefPuts)
	}
	_ = sink
}
