package memcache

import (
	"fmt"

	"flick/internal/buffer"
	"flick/internal/grammar"
)

// headerLen is the fixed binary-protocol header size; the total body length
// (extras + key + value) sits at bytes 8..11, big-endian.
const headerLen = 24

// FrameLen reports the wire length of the binary-protocol message starting
// at buffered offset from in q, without consuming any byte. It returns 0
// when too few bytes are buffered to know, and an error when the bytes
// cannot begin a message (bad magic, oversized body). Both requests and
// responses share this framing; the shared upstream connection layer uses
// it to demultiplex the pipelined response stream.
func FrameLen(q *buffer.Queue, from int) (int, error) {
	n, _, err := frameLen(q, from)
	return n, err
}

// FrameRequestLen is FrameLen for the request direction of a shared
// upstream socket, where FIFO correlation requires every request to
// produce exactly one response. Quiet opcodes (GetQ, GetKQ, SetQ, ...)
// respond conditionally or not at all — multiplexing one would misroute
// every later response on the socket to the wrong client — so they are
// rejected here (the writing session fails; its client loses only its own
// connection, exactly as if the backend had dropped it).
func FrameRequestLen(q *buffer.Queue, from int) (int, error) {
	n, opcode, err := frameLen(q, from)
	if err == nil && n > 0 && quietOpcode(opcode) {
		return 0, fmt.Errorf("memcache: quiet opcode 0x%02x cannot be multiplexed (no 1:1 response)", opcode)
	}
	return n, err
}

func frameLen(q *buffer.Queue, from int) (n int, opcode byte, err error) {
	if q.Len()-from < 12 {
		return 0, 0, nil
	}
	var hdr [12]byte
	q.PeekAt(hdr[:], from)
	if hdr[0] != MagicRequest && hdr[0] != MagicResponse {
		return 0, 0, fmt.Errorf("memcache: bad magic 0x%02x", hdr[0])
	}
	body := int(uint32(hdr[8])<<24 | uint32(hdr[9])<<16 | uint32(hdr[10])<<8 | uint32(hdr[11]))
	if body > grammar.DefaultMaxMessage {
		return 0, 0, fmt.Errorf("memcache: body of %d bytes too large", body)
	}
	return headerLen + body, hdr[1], nil
}

// quietOpcode reports whether op is one of the binary protocol's quiet
// variants, which suppress (success) responses.
func quietOpcode(op byte) bool {
	switch op {
	case 0x09, 0x0d, // GetQ, GetKQ
		0x11, 0x12, 0x13, 0x14, 0x15, 0x16, // SetQ..DecrementQ
		0x17, 0x18, 0x19, 0x1a, // QuitQ, FlushQ, AppendQ, PrependQ
		0x1e, 0x24: // GATQ, GATKQ
		return true
	}
	return false
}
