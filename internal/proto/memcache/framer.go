package memcache

import (
	"fmt"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/upstream"
)

// headerLen is the fixed binary-protocol header size; the total body length
// (extras + key + value) sits at bytes 8..11, big-endian, and the opaque
// the server mirrors back at bytes 12..15.
const headerLen = 24

// maxQuietBatch bounds the quiet requests accepted ahead of one
// terminator: a client streaming GetQ without ever sending the Noop would
// otherwise stage unbounded bytes in the session.
const maxQuietBatch = 1024

// Quiet-batch context layout (upstream.Context): bit 63 flags a batch,
// bits 32..39 carry the terminator's opcode and bits 0..31 its opaque —
// everything the demultiplexer needs to recognise the response that ends
// the batch.
const ctxQuietBatch upstream.Context = 1 << 63

// batchContext packs a quiet-batch terminator into an upstream.Context.
func batchContext(op byte, opaque uint32) upstream.Context {
	return ctxQuietBatch | upstream.Context(op)<<32 | upstream.Context(opaque)
}

// FrameLen reports the wire length of the binary-protocol message starting
// at buffered offset from in q, without consuming any byte. It returns 0
// when too few bytes are buffered to know, and an error when the bytes
// cannot begin a message (bad magic, oversized body). Requests and
// responses share this per-message framing.
func FrameLen(q *buffer.Queue, from int) (int, error) {
	n, _, err := frameLen(q, from)
	return n, err
}

// FrameRequestLen frames the request direction of a shared upstream
// socket. A non-quiet request frames alone: one FIFO slot, one response.
// A quiet request (GetQ, GetKQ, ...) responds conditionally or not at all,
// so it cannot occupy a FIFO slot of its own; instead the framer scans
// forward for the moxi-style batch shape — a run of quiet requests
// terminated by a non-quiet one (canonically Noop) — and frames the whole
// batch as ONE unit whose upstream.Context records the terminator's opcode
// and opaque. The demultiplexer then delivers every response through the
// terminator's as one view (FrameResponseLen). An unterminated run stays
// staged (returns 0) until the terminator is written; QuitQ closes the
// backend socket and is rejected outright.
func FrameRequestLen(q *buffer.Queue, from int) (int, upstream.Context, error) {
	n, opcode, err := frameLen(q, from)
	if err != nil || n == 0 {
		return 0, 0, err
	}
	if !quietOpcode(opcode) {
		return n, 0, nil
	}
	if opcode == OpQuitQ {
		return 0, 0, fmt.Errorf("memcache: QuitQ cannot be multiplexed (closes the shared socket)")
	}
	total := n
	for count := 1; ; count++ {
		if count > maxQuietBatch {
			return 0, 0, fmt.Errorf("memcache: quiet batch exceeds %d requests without a terminator", maxQuietBatch)
		}
		n, opcode, err = frameLen(q, from+total)
		if err != nil {
			return 0, 0, err
		}
		if n == 0 {
			return 0, 0, nil // terminator not buffered yet: keep staging
		}
		if quietOpcode(opcode) {
			if opcode == OpQuitQ {
				return 0, 0, fmt.Errorf("memcache: QuitQ cannot be multiplexed (closes the shared socket)")
			}
			total += n
			continue
		}
		// Non-quiet terminator: its opaque identifies the response that
		// ends the batch.
		if q.Len()-(from+total) < 16 {
			return 0, 0, nil
		}
		var hdr [16]byte
		q.PeekAt(hdr[:], from+total)
		opaque := uint32(hdr[12])<<24 | uint32(hdr[13])<<16 | uint32(hdr[14])<<8 | uint32(hdr[15])
		return total + n, batchContext(opcode, opaque), nil
	}
}

// FrameResponseLen frames the response direction. For an ordinary request
// (zero context) it is per-message framing. For a quiet batch it scans
// complete response messages until the one matching the terminator's
// opcode and opaque, and reports the whole run — the hits of the quiet
// requests plus the terminator's response — as one view, preserving FIFO
// correlation for the sessions behind it.
func FrameResponseLen(q *buffer.Queue, from int, ctx upstream.Context) (int, error) {
	if ctx&ctxQuietBatch == 0 {
		return FrameLen(q, from)
	}
	wantOp := byte(ctx >> 32)
	wantOpaque := uint32(ctx)
	total := 0
	for msgs := 0; ; msgs++ {
		if msgs > 2*maxQuietBatch {
			return 0, fmt.Errorf("memcache: no terminator response within %d messages of a quiet batch", 2*maxQuietBatch)
		}
		n, opcode, err := frameLen(q, from+total)
		if err != nil {
			return 0, err
		}
		if n == 0 || q.Len()-(from+total) < n {
			return 0, nil
		}
		var hdr [16]byte
		q.PeekAt(hdr[:], from+total)
		opaque := uint32(hdr[12])<<24 | uint32(hdr[13])<<16 | uint32(hdr[14])<<8 | uint32(hdr[15])
		total += n
		if opcode == wantOp && opaque == wantOpaque {
			return total, nil
		}
	}
}

func frameLen(q *buffer.Queue, from int) (n int, opcode byte, err error) {
	if q.Len()-from < 12 {
		return 0, 0, nil
	}
	var hdr [12]byte
	q.PeekAt(hdr[:], from)
	if hdr[0] != MagicRequest && hdr[0] != MagicResponse {
		return 0, 0, fmt.Errorf("memcache: bad magic 0x%02x", hdr[0])
	}
	body := int(uint32(hdr[8])<<24 | uint32(hdr[9])<<16 | uint32(hdr[10])<<8 | uint32(hdr[11]))
	if body > grammar.DefaultMaxMessage {
		return 0, 0, fmt.Errorf("memcache: body of %d bytes too large", body)
	}
	return headerLen + body, hdr[1], nil
}

// quietOpcode reports whether op is one of the binary protocol's quiet
// variants, which suppress (success) responses.
func quietOpcode(op byte) bool {
	switch op {
	case OpGetQ, OpGetKQ,
		0x11, 0x12, 0x13, 0x14, 0x15, 0x16, // SetQ..DecrementQ
		OpQuitQ, 0x18, 0x19, 0x1a, // FlushQ, AppendQ, PrependQ
		0x1e, 0x24: // GATQ, GATKQ
		return true
	}
	return false
}
