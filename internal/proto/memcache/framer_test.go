package memcache

import (
	"testing"

	"flick/internal/buffer"
)

func TestFrameLenMatchesCodec(t *testing.T) {
	q := buffer.NewQueue(nil)
	wire, err := Codec.Encode(nil, Request(OpGetK, []byte("some-key"), []byte("some-value")))
	if err != nil {
		t.Fatal(err)
	}
	q.Append([]byte{wire[0]}) // trickle: framer must wait for 12 bytes
	if n, err := FrameLen(q, 0); n != 0 || err != nil {
		t.Fatalf("partial header framed: n=%d err=%v", n, err)
	}
	q.Append(wire[1:])
	q.Append(wire) // a second message behind it
	n, err := FrameLen(q, 0)
	if err != nil || n != len(wire) {
		t.Fatalf("FrameLen = %d, %v; want %d", n, err, len(wire))
	}
	// Framing at a non-zero offset sees the second message.
	n2, err := FrameLen(q, n)
	if err != nil || n2 != len(wire) {
		t.Fatalf("FrameLen at offset = %d, %v; want %d", n2, err, len(wire))
	}
	// The frame length is exactly what the decoder consumes.
	before := q.Len()
	msg, ok, derr := Codec.NewDecoder().Decode(q)
	if derr != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, derr)
	}
	if consumed := before - q.Len(); consumed != n {
		t.Fatalf("decoder consumed %d, framer said %d", consumed, n)
	}
	msg.Release()
}

func TestFrameLenRejectsBadMagic(t *testing.T) {
	q := buffer.NewQueue(nil)
	q.Append([]byte("GET /index.html HTTP/1.1\r\n\r\n"))
	if _, err := FrameLen(q, 0); err == nil {
		t.Fatal("non-memcached bytes framed without error")
	}
}

// TestFrameRequestLenRejectsQuietOpcodes pins the multiplexing safety rule:
// quiet opcodes produce no (or conditional) responses, which would skew
// FIFO correlation for every client sharing the socket, so the request
// framer refuses them.
func TestFrameRequestLenRejectsQuietOpcodes(t *testing.T) {
	for _, op := range []byte{0x09, 0x0d, 0x11, 0x19, 0x1e, 0x24} { // GetQ, GetKQ, SetQ, AppendQ, GATQ, GATKQ
		q := buffer.NewQueue(nil)
		wire, err := Codec.Encode(nil, Request(op, []byte("k"), nil))
		if err != nil {
			t.Fatal(err)
		}
		q.Append(wire)
		if _, err := FrameRequestLen(q, 0); err == nil {
			t.Fatalf("quiet opcode 0x%02x accepted by the request framer", op)
		}
		// The response direction still frames it (a server echoing the
		// opcode in a response header must not kill the socket).
		if n, err := FrameLen(q, 0); err != nil || n != len(wire) {
			t.Fatalf("FrameLen on quiet opcode: n=%d err=%v", n, err)
		}
	}
	// Normal opcodes pass the request framer.
	q := buffer.NewQueue(nil)
	wire, _ := Codec.Encode(nil, Request(OpGet, []byte("k"), nil))
	q.Append(wire)
	if n, err := FrameRequestLen(q, 0); err != nil || n != len(wire) {
		t.Fatalf("OpGet rejected: n=%d err=%v", n, err)
	}
}
