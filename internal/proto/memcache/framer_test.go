package memcache

import (
	"testing"

	"flick/internal/buffer"
)

func TestFrameLenMatchesCodec(t *testing.T) {
	q := buffer.NewQueue(nil)
	wire, err := Codec.Encode(nil, Request(OpGetK, []byte("some-key"), []byte("some-value")))
	if err != nil {
		t.Fatal(err)
	}
	q.Append([]byte{wire[0]}) // trickle: framer must wait for 12 bytes
	if n, err := FrameLen(q, 0); n != 0 || err != nil {
		t.Fatalf("partial header framed: n=%d err=%v", n, err)
	}
	q.Append(wire[1:])
	q.Append(wire) // a second message behind it
	n, err := FrameLen(q, 0)
	if err != nil || n != len(wire) {
		t.Fatalf("FrameLen = %d, %v; want %d", n, err, len(wire))
	}
	// Framing at a non-zero offset sees the second message.
	n2, err := FrameLen(q, n)
	if err != nil || n2 != len(wire) {
		t.Fatalf("FrameLen at offset = %d, %v; want %d", n2, err, len(wire))
	}
	// The frame length is exactly what the decoder consumes.
	before := q.Len()
	msg, ok, derr := Codec.NewDecoder().Decode(q)
	if derr != nil || !ok {
		t.Fatalf("decode: ok=%v err=%v", ok, derr)
	}
	if consumed := before - q.Len(); consumed != n {
		t.Fatalf("decoder consumed %d, framer said %d", consumed, n)
	}
	msg.Release()
}

func TestFrameLenRejectsBadMagic(t *testing.T) {
	q := buffer.NewQueue(nil)
	q.Append([]byte("GET /index.html HTTP/1.1\r\n\r\n"))
	if _, err := FrameLen(q, 0); err == nil {
		t.Fatal("non-memcached bytes framed without error")
	}
}

// reqWire builds the wire bytes of one request with the opaque field
// patched in (header bytes 12..15, big-endian).
func reqWire(t *testing.T, op byte, key []byte, opaque uint32) []byte {
	t.Helper()
	wire, err := Codec.Encode(nil, Request(op, key, nil))
	if err != nil {
		t.Fatal(err)
	}
	wire[12] = byte(opaque >> 24)
	wire[13] = byte(opaque >> 16)
	wire[14] = byte(opaque >> 8)
	wire[15] = byte(opaque)
	return wire
}

func respWire(t *testing.T, op byte, val []byte, opaque uint32) []byte {
	t.Helper()
	wire, err := Codec.Encode(nil, Response(Request(op, nil, nil), StatusOK, nil, val))
	if err != nil {
		t.Fatal(err)
	}
	wire[12] = byte(opaque >> 24)
	wire[13] = byte(opaque >> 16)
	wire[14] = byte(opaque >> 8)
	wire[15] = byte(opaque)
	return wire
}

// TestFrameRequestLenQuietBatch pins the moxi-style quiet-get pipeline: a
// run of GetQ/GetKQ terminated by a Noop frames as ONE unit whose context
// records the terminator, and the response framer delivers every response
// through the terminator's as one view.
func TestFrameRequestLenQuietBatch(t *testing.T) {
	g1 := reqWire(t, OpGetQ, []byte("a"), 1)
	g2 := reqWire(t, OpGetKQ, []byte("b"), 2)
	term := reqWire(t, OpNoop, nil, 7)

	q := buffer.NewQueue(nil)
	q.Append(g1)
	// An unterminated quiet run stays staged, not rejected.
	if n, _, err := FrameRequestLen(q, 0); n != 0 || err != nil {
		t.Fatalf("unterminated run: n=%d err=%v; want staged", n, err)
	}
	q.Append(g2)
	if n, _, err := FrameRequestLen(q, 0); n != 0 || err != nil {
		t.Fatalf("unterminated run of two: n=%d err=%v; want staged", n, err)
	}
	q.Append(term)
	total := len(g1) + len(g2) + len(term)
	n, ctx, err := FrameRequestLen(q, 0)
	if err != nil || n != total {
		t.Fatalf("batch framed as %d, %v; want %d", n, err, total)
	}
	if ctx == 0 {
		t.Fatal("quiet batch carries no demux context")
	}

	// Response side: a hit for one of the quiet gets, then the Noop
	// response carrying the terminator's opaque — one view, both messages.
	hit := respWire(t, OpGetQ, []byte("value-a"), 1)
	noop := respWire(t, OpNoop, nil, 7)
	rq := buffer.NewQueue(nil)
	rq.Append(hit)
	if n, err := FrameResponseLen(rq, 0, ctx); n != 0 || err != nil {
		t.Fatalf("batch response framed before terminator: n=%d err=%v", n, err)
	}
	rq.Append(noop)
	if n, err := FrameResponseLen(rq, 0, ctx); err != nil || n != len(hit)+len(noop) {
		t.Fatalf("batch response = %d, %v; want %d", n, err, len(hit)+len(noop))
	}
	// A terminator-only batch (every quiet get missed) frames too.
	rq2 := buffer.NewQueue(nil)
	rq2.Append(noop)
	if n, err := FrameResponseLen(rq2, 0, ctx); err != nil || n != len(noop) {
		t.Fatalf("all-miss batch response = %d, %v; want %d", n, err, len(noop))
	}
}

// TestFrameRequestLenSingles: ordinary opcodes frame one message per FIFO
// slot with a neutral context.
func TestFrameRequestLenSingles(t *testing.T) {
	wire := reqWire(t, OpGet, []byte("k"), 3)
	q := buffer.NewQueue(nil)
	q.Append(wire)
	n, ctx, err := FrameRequestLen(q, 0)
	if err != nil || n != len(wire) || ctx != 0 {
		t.Fatalf("FrameRequestLen(Get) = %d, %#x, %v; want %d, 0, nil", n, ctx, err, len(wire))
	}
}

// TestFrameRequestLenRejectsQuitQ: QuitQ closes the shared socket with no
// response — never legal, alone or inside a quiet run.
func TestFrameRequestLenRejectsQuitQ(t *testing.T) {
	q := buffer.NewQueue(nil)
	q.Append(reqWire(t, OpQuitQ, nil, 0))
	if _, _, err := FrameRequestLen(q, 0); err == nil {
		t.Fatal("lone QuitQ accepted by the request framer")
	}
	q = buffer.NewQueue(nil)
	q.Append(reqWire(t, OpGetQ, []byte("k"), 1))
	q.Append(reqWire(t, OpQuitQ, nil, 0))
	if _, _, err := FrameRequestLen(q, 0); err == nil {
		t.Fatal("QuitQ inside a quiet run accepted by the request framer")
	}
}
