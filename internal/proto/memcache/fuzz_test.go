package memcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flick/internal/buffer"
	"flick/internal/value"
)

// FuzzMemcacheDecode feeds arbitrary bytes through the compiled Memcached
// binary-protocol grammar: decoding must never panic, and every
// successfully decoded frame must re-encode byte-exactly on both the raw
// fast path and the rebuilt path (decode→encode→decode is a fixed point).
func FuzzMemcacheDecode(f *testing.F) {
	for _, name := range []string{
		"get_hello_request.bin", "get_hello_response.bin",
		"set_hello_world_request.bin", "getk_request.bin", "get_miss_response.bin",
	} {
		if raw, err := os.ReadFile(filepath.Join("testdata", name)); err == nil {
			f.Add(raw)
		}
	}
	f.Add([]byte{0x80, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0}, 24))
	f.Fuzz(func(t *testing.T, data []byte) {
		q := buffer.NewQueue(nil)
		q.Append(data)
		dec := Codec.NewDecoder()
		for i := 0; i < 64; i++ {
			msg, ok, err := dec.Decode(q)
			if err != nil || !ok {
				break
			}
			// Raw fast path reproduces the consumed wire bytes.
			raw := append([]byte(nil), Codec.Raw(msg)...)
			e0, err := Codec.Encode(nil, msg)
			if err != nil {
				t.Fatalf("raw encode failed: %v", err)
			}
			if !bytes.Equal(e0, raw) {
				t.Fatalf("raw encode differs from wire image")
			}
			// Rebuilt path: recomputed framing must be a fixed point.
			Codec.ClearRaw(msg)
			e1, err := Codec.Encode(nil, msg)
			if err != nil {
				t.Fatalf("rebuild encode failed: %v", err)
			}
			q2 := buffer.NewQueue(nil)
			q2.Append(e1)
			msg2, ok2, err2 := Codec.NewDecoder().Decode(q2)
			if err2 != nil || !ok2 {
				t.Fatalf("re-decode of rebuilt frame failed (ok=%v err=%v): %x", ok2, err2, e1)
			}
			for _, field := range []string{"magic_code", "opcode", "status_or_v_bucket",
				"opaque", "cas", "extras", "key", "value"} {
				if !value.Equal(msg.Field(field), msg2.Field(field)) {
					t.Fatalf("field %s changed across round trip: %v -> %v",
						field, msg.Field(field), msg2.Field(field))
				}
			}
			Codec.ClearRaw(msg2)
			e2, err := Codec.Encode(nil, msg2)
			if err != nil {
				t.Fatalf("second rebuild encode failed: %v", err)
			}
			if !bytes.Equal(e1, e2) {
				t.Fatalf("rebuild encoding not a fixed point:\n e1 %x\n e2 %x", e1, e2)
			}
			msg2.Release()
			msg.Release()
		}
	})
}
