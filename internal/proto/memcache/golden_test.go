package memcache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"flick/internal/buffer"
	"flick/internal/value"
)

// decodeFrame parses one complete frame from raw.
func decodeFrame(t *testing.T, raw []byte) value.Value {
	t.Helper()
	q := buffer.NewQueue(nil)
	q.Append(raw)
	msg, ok, err := Codec.NewDecoder().Decode(q)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !ok {
		t.Fatalf("frame incomplete after %d bytes", len(raw))
	}
	if q.Len() != 0 {
		t.Fatalf("%d trailing bytes after frame", q.Len())
	}
	return msg
}

func golden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestGoldenFrames checks field-level parse results and byte-exact
// re-encoding (both the raw fast path and the rebuilt path) against real
// Memcached binary-protocol frames.
func TestGoldenFrames(t *testing.T) {
	cases := []struct {
		file   string
		fields map[string]int64 // integer field expectations
		key    string
		val    string
		extras string
	}{
		{
			file: "get_hello_request.bin",
			fields: map[string]int64{
				"magic_code": MagicRequest, "opcode": OpGet, "key_len": 5,
				"extras_len": 0, "total_len": 5, "opaque": 0, "cas": 0,
				"status_or_v_bucket": 0, "value_len": 0,
			},
			key: "Hello",
		},
		{
			file: "get_hello_response.bin",
			fields: map[string]int64{
				"magic_code": MagicResponse, "opcode": OpGet, "key_len": 0,
				"extras_len": 4, "total_len": 9, "cas": 1, "value_len": 5,
			},
			val:    "World",
			extras: "\xde\xad\xbe\xef",
		},
		{
			file: "set_hello_world_request.bin",
			fields: map[string]int64{
				"magic_code": MagicRequest, "opcode": OpSet, "key_len": 5,
				"extras_len": 8, "total_len": 18, "opaque": 0xdecafbad, "value_len": 5,
			},
			key:    "Hello",
			val:    "World",
			extras: "\xde\xad\xbe\xef\x00\x00\x0e\x10",
		},
		{
			file: "getk_request.bin",
			fields: map[string]int64{
				"magic_code": MagicRequest, "opcode": OpGetK, "key_len": 10,
				"opaque": 7, "value_len": 0,
			},
			key: "key-000042",
		},
		{
			file: "get_miss_response.bin",
			fields: map[string]int64{
				"magic_code": MagicResponse, "status_or_v_bucket": StatusKeyNotFound,
				"total_len": 9, "value_len": 9,
			},
			val: "Not found",
		},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			raw := golden(t, tc.file)
			msg := decodeFrame(t, raw)
			defer msg.Release()
			for name, want := range tc.fields {
				if got := msg.Field(name).AsInt(); got != want {
					t.Errorf("%s = %d, want %d", name, got, want)
				}
			}
			if got := msg.Field("key").AsString(); got != tc.key {
				t.Errorf("key = %q, want %q", got, tc.key)
			}
			if got := msg.Field("value").AsString(); got != tc.val {
				t.Errorf("value = %q, want %q", got, tc.val)
			}
			if got := msg.Field("extras").AsString(); got != tc.extras {
				t.Errorf("extras = %x, want %x", got, tc.extras)
			}

			// Raw fast path: byte-exact.
			out, err := Codec.Encode(nil, msg)
			if err != nil {
				t.Fatalf("encode (raw): %v", err)
			}
			if !bytes.Equal(out, raw) {
				t.Errorf("raw re-encode differs:\n got %x\nwant %x", out, raw)
			}

			// Rebuilt path (raw image cleared): the grammar recomputes the
			// length fields from current contents — still byte-exact for an
			// unmodified frame.
			Codec.ClearRaw(msg)
			out, err = Codec.Encode(nil, msg)
			if err != nil {
				t.Fatalf("encode (rebuild): %v", err)
			}
			if !bytes.Equal(out, raw) {
				t.Errorf("rebuilt re-encode differs:\n got %x\nwant %x", out, raw)
			}
		})
	}
}

// TestGoldenFrameSplitDelivery re-parses a golden frame delivered one byte
// at a time, exercising the incremental peek-phase resume.
func TestGoldenFrameSplitDelivery(t *testing.T) {
	raw := golden(t, "set_hello_world_request.bin")
	q := buffer.NewQueue(nil)
	dec := Codec.NewDecoder()
	for i, b := range raw {
		q.Append([]byte{b})
		msg, ok, err := dec.Decode(q)
		if err != nil {
			t.Fatalf("byte %d: %v", i, err)
		}
		if ok != (i == len(raw)-1) {
			t.Fatalf("byte %d: ok=%v", i, ok)
		}
		if ok {
			if got := msg.Field("key").AsString(); got != "Hello" {
				t.Fatalf("key = %q", got)
			}
			msg.Release()
		}
	}
}
