// Package memcache provides helpers over the Memcached binary protocol
// grammar: typed message constructors and blocking conn-level send/receive
// used by the backend server, the Moxi-like baseline and the load
// generators. The FLICK data path itself uses the grammar codec directly
// inside input/output tasks.
//
// # Ownership of received messages
//
// Messages returned by Conn.Receive, Conn.RoundTrip and ReadMessage are
// zero-copy views over pooled wire bytes: every byte field (key, value,
// _raw) aliases the refcounted region the network bytes landed in. Callers
// MUST call Release on each received message once done with it — or hand
// the batch to ReleaseAll — otherwise the pooled region never recycles and
// ref-balance assertions (refgets == refputs) fail. Bytes that must
// outlive the message belong in an owned copy (value.Owned / Detach)
// taken before the Release.
package memcache

import (
	"fmt"
	"io"
	"net"

	"flick/internal/buffer"
	"flick/internal/grammar"
	"flick/internal/value"
)

// Protocol constants re-exported from the grammar for convenience.
const (
	MagicRequest  = grammar.MemcachedMagicRequest
	MagicResponse = grammar.MemcachedMagicResponse
	OpGet         = grammar.MemcachedOpGet
	OpSet         = grammar.MemcachedOpSet
	OpGetK        = grammar.MemcachedOpGetK
	// OpNoop is the binary-protocol no-op: a 24-byte header in, a 24-byte
	// header out. The upstream layer's health probes use it, and it is
	// the canonical terminator of a quiet-get batch.
	OpNoop = 0x0a
	// Quiet read opcodes: a hit responds, a miss stays silent. A run of
	// these terminated by a non-quiet request (Noop, Get) pipelines as
	// one FIFO batch through the shared upstream layer (moxi-style
	// quiet-get pipelining).
	OpGetQ  = 0x09
	OpGetKQ = 0x0d
	// OpQuitQ closes the connection without a response — never legal on a
	// shared socket.
	OpQuitQ = 0x17

	// Mutation opcodes — the response cache treats each as a write-through
	// invalidation of its key (quiet variants are op|0x10 and classify the
	// same way by key presence).
	OpAdd       = 0x02
	OpReplace   = 0x03
	OpDelete    = 0x04
	OpIncrement = 0x05
	OpDecrement = 0x06
	OpAppend    = 0x0e
	OpPrepend   = 0x0f
	// OpQuit ends the session; OpFlush (flush_all) drops every key.
	OpQuit    = 0x07
	OpFlush   = 0x08
	OpVersion = 0x0b
	OpStat    = 0x10

	// Quiet mutation opcodes (op | 0x10 of their loud twins): acked only on
	// failure, but each still names exactly one key — the response cache
	// scopes them to single-key invalidations rather than a full clear.
	OpSetQ       = 0x11
	OpAddQ       = 0x12
	OpReplaceQ   = 0x13
	OpDeleteQ    = 0x14
	OpIncrementQ = 0x15
	OpDecrementQ = 0x16
	OpAppendQ    = 0x19
	OpPrependQ   = 0x1a
	// OpFlushQ drops every key without an ack — the one quiet op that is
	// genuinely keyless.
	OpFlushQ = 0x18
	// Touch and get-and-touch mutate a key's expiry (and GAT* also read):
	// the proxy cache can't mirror per-key TTL changes, so each
	// invalidates its key.
	OpTouch = 0x1c
	OpGAT   = 0x1d
	OpGATQ  = 0x1e
	OpGATK  = 0x23
	OpGATKQ = 0x24

	StatusOK          = 0x0000
	StatusKeyNotFound = 0x0001
)

// ProbeRequest returns the wire bytes of one Noop request — the
// lightweight liveness probe the shared upstream layer round-trips against
// memcached backends (upstream.Config.Probe). Noop is not a quiet opcode,
// so FrameRequestLen accepts it and FIFO correlation holds.
func ProbeRequest() []byte {
	req := make([]byte, 24)
	req[0] = MagicRequest
	req[1] = OpNoop
	return req
}

// Codec is the full-fidelity compiled Memcached grammar. Raw capture is on:
// decoded commands keep a zero-copy view of their wire image, so proxying
// an unmodified command re-emits the original pooled bytes without
// re-serialising (and without copying, on the scatter output path).
var Codec = grammar.MemcachedUnit().MustCompile(grammar.CaptureRaw())

// Desc describes Memcached command records.
var Desc = Codec.Desc()

// Request builds a request record.
func Request(opcode byte, key, val []byte) value.Value {
	rec := Desc.New()
	rec.SetField("magic_code", value.Int(MagicRequest))
	rec.SetField("opcode", value.Int(int64(opcode)))
	rec.SetField("key", value.Bytes(key))
	rec.SetField("value", value.Bytes(val))
	return rec
}

// Response builds a response record mirroring a request's opcode and opaque.
func Response(req value.Value, status int, key, val []byte) value.Value {
	rec := Desc.New()
	rec.SetField("magic_code", value.Int(MagicResponse))
	rec.SetField("opcode", req.Field("opcode"))
	rec.SetField("opaque", req.Field("opaque"))
	rec.SetField("status_or_v_bucket", value.Int(int64(status)))
	rec.SetField("key", value.Bytes(key))
	rec.SetField("value", value.Bytes(val))
	return rec
}

// IsResponse reports whether msg carries the response magic.
func IsResponse(msg value.Value) bool {
	return msg.Field("magic_code").AsInt() == MagicResponse
}

// Status returns a response's status field.
func Status(msg value.Value) int {
	return int(msg.Field("status_or_v_bucket").AsInt())
}

// Conn wraps a net.Conn with message framing in both directions.
type Conn struct {
	conn net.Conn
	dec  grammar.StreamDecoder
	q    *buffer.Queue
	rbuf []byte
	wbuf []byte
}

// NewConn wraps c for message-oriented use.
func NewConn(c net.Conn) *Conn {
	return &Conn{
		conn: c,
		dec:  Codec.NewDecoder(),
		q:    buffer.NewQueue(nil),
		rbuf: make([]byte, 16<<10),
	}
}

// Send encodes and writes one message.
func (c *Conn) Send(msg value.Value) error {
	out, err := Codec.Encode(c.wbuf[:0], msg)
	if err != nil {
		return err
	}
	c.wbuf = out[:0]
	_, err = c.conn.Write(out)
	return err
}

// Receive blocks until one complete message arrives. The message retains
// pooled wire bytes — the caller must Release it (see the package note on
// ownership).
func (c *Conn) Receive() (value.Value, error) {
	for {
		if msg, ok, err := c.dec.Decode(c.q); err != nil {
			return value.Null, err
		} else if ok {
			return msg, nil
		}
		n, err := c.conn.Read(c.rbuf)
		if n > 0 {
			c.q.Append(c.rbuf[:n])
			continue
		}
		if err != nil {
			return value.Null, err
		}
	}
}

// RoundTrip sends a request and waits for its response. The response
// retains pooled wire bytes — the caller must Release it (see the package
// note on ownership).
func (c *Conn) RoundTrip(req value.Value) (value.Value, error) {
	if err := c.Send(req); err != nil {
		return value.Null, err
	}
	return c.Receive()
}

// ReleaseAll releases every message in msgs, skipping Null values — the
// one-liner for callers that accumulated several pooled responses (see the
// package note on ownership).
func ReleaseAll(msgs ...value.Value) {
	for _, m := range msgs {
		if m.Kind != value.KindNull {
			m.Release()
		}
	}
}

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// ReadMessage reads exactly one framed message from r without buffering
// beyond the message (used where a shared bufio layer is undesirable).
func ReadMessage(r io.Reader) (value.Value, error) {
	var header [24]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return value.Null, err
	}
	totalLen := int(uint32(header[8])<<24 | uint32(header[9])<<16 | uint32(header[10])<<8 | uint32(header[11]))
	if totalLen > grammar.DefaultMaxMessage {
		return value.Null, fmt.Errorf("memcache: body of %d bytes too large", totalLen)
	}
	body := make([]byte, totalLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return value.Null, err
	}
	q := buffer.NewQueue(nil)
	q.Append(header[:])
	q.Append(body)
	msg, ok, err := Codec.NewDecoder().Decode(q)
	if err != nil {
		return value.Null, err
	}
	if !ok {
		return value.Null, fmt.Errorf("memcache: short message")
	}
	return msg, nil
}
