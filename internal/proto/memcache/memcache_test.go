package memcache

import (
	"bytes"
	"net"
	"testing"

	"flick/internal/netstack"
	"flick/internal/value"
)

func TestRequestResponseConstruction(t *testing.T) {
	req := Request(OpGetK, []byte("k"), nil)
	if req.Field("magic_code").AsInt() != MagicRequest {
		t.Fatal("magic")
	}
	if req.Field("opcode").AsInt() != OpGetK {
		t.Fatal("opcode")
	}
	resp := Response(req, StatusOK, []byte("k"), []byte("v"))
	if !IsResponse(resp) {
		t.Fatal("IsResponse")
	}
	if IsResponse(req) {
		t.Fatal("request classified as response")
	}
	if Status(resp) != StatusOK {
		t.Fatal("status")
	}
	if resp.Field("opcode").AsInt() != OpGetK {
		t.Fatal("response opcode should mirror request")
	}
}

func TestConnSendReceive(t *testing.T) {
	u := netstack.NewUserNet()
	l, _ := u.Listen("mc:1")
	done := make(chan error, 1)
	go func() {
		raw, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		c := NewConn(raw)
		defer c.Close()
		req, err := c.Receive()
		if err != nil {
			done <- err
			return
		}
		done <- c.Send(Response(req, StatusOK, req.Field("key").AsBytes(), []byte("stored")))
	}()

	raw, err := u.Dial("mc:1")
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(raw)
	defer c.Close()
	resp, err := c.RoundTrip(Request(OpGet, []byte("the-key"), nil))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Field("value").AsString() != "stored" {
		t.Fatalf("value = %q", resp.Field("value").AsString())
	}
	if resp.Field("key").AsString() != "the-key" {
		t.Fatalf("key = %q", resp.Field("key").AsString())
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestConnPipelinedMessages(t *testing.T) {
	u := netstack.NewUserNet()
	l, _ := u.Listen("mc:2")
	go func() {
		raw, _ := l.Accept()
		c := NewConn(raw)
		defer c.Close()
		for i := 0; i < 10; i++ {
			req, err := c.Receive()
			if err != nil {
				return
			}
			c.Send(Response(req, StatusOK, nil, req.Field("key").AsBytes()))
		}
	}()
	raw, _ := u.Dial("mc:2")
	c := NewConn(raw)
	defer c.Close()
	// Send all ten before reading any reply (pipelining).
	keys := []string{"a", "bb", "ccc", "dddd", "e", "ff", "g", "h", "i", "jj"}
	for _, k := range keys {
		if err := c.Send(Request(OpGet, []byte(k), nil)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		resp, err := c.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Field("value").AsString() != k {
			t.Fatalf("reply = %q, want %q", resp.Field("value").AsString(), k)
		}
	}
}

func TestReadMessage(t *testing.T) {
	wire, err := Codec.Encode(nil, Request(OpSet, []byte("key"), []byte("value")))
	if err != nil {
		t.Fatal(err)
	}
	msg, err := ReadMessage(bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	if msg.Field("key").AsString() != "key" || msg.Field("value").AsString() != "value" {
		t.Fatal("ReadMessage mismatch")
	}
}

func TestReadMessageTruncated(t *testing.T) {
	wire, _ := Codec.Encode(nil, Request(OpSet, []byte("key"), []byte("value")))
	if _, err := ReadMessage(bytes.NewReader(wire[:10])); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, err := ReadMessage(bytes.NewReader(wire[:len(wire)-2])); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestConnReceiveEOF(t *testing.T) {
	u := netstack.NewUserNet()
	l, _ := u.Listen("mc:3")
	connCh := make(chan net.Conn, 1)
	go func() {
		c, _ := l.Accept()
		connCh <- c
	}()
	raw, _ := u.Dial("mc:3")
	srv := <-connCh
	srv.Close()
	c := NewConn(raw)
	if _, err := c.Receive(); err == nil {
		t.Fatal("Receive on closed peer succeeded")
	}
}

func TestResponseValueTypes(t *testing.T) {
	resp := Response(Request(OpGet, []byte("k"), nil), StatusKeyNotFound, nil, nil)
	if Status(resp) != StatusKeyNotFound {
		t.Fatal("status")
	}
	if resp.Field("value").Kind != value.KindBytes {
		t.Fatal("nil value should still be bytes kind")
	}
}
