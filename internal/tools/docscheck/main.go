// Command docscheck is the repository's documentation gate, run by
// `make check-docs` and the CI docs job. It enforces three things:
//
//  1. Markdown hygiene: every relative link in the given markdown files
//     resolves to a file or directory in the repository (broken anchors to
//     moved docs are the most common doc rot).
//  2. Anchor hygiene: every intra-doc fragment — `#section` within a file
//     and `other.md#section` across files — resolves to a heading of the
//     target document (GitHub slug rules), so section links cannot rot
//     silently when headings are renamed.
//  3. Godoc coverage: every exported identifier in the listed packages has
//     a doc comment (the subset of revive's `exported` rule this
//     repository cares about, without the dependency).
//
// Usage:
//
//	go run ./internal/tools/docscheck -pkgs internal/upstream,internal/backend README.md docs/ARCHITECTURE.md
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// mdLink matches inline markdown links and captures the destination.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// atxHeading matches one ATX heading line and captures its text.
var atxHeading = regexp.MustCompile(`^#{1,6}\s+(.*?)\s*#*\s*$`)

func main() {
	pkgs := flag.String("pkgs", "", "comma-separated package directories to check for exported doc comments")
	flag.Parse()

	bad := 0
	report := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		bad++
	}

	for _, md := range flag.Args() {
		checkMarkdown(md, report)
	}
	for _, dir := range strings.Split(*pkgs, ",") {
		if dir = strings.TrimSpace(dir); dir != "" {
			checkExportedDocs(dir, report)
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", bad)
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkMarkdown verifies every relative link in file resolves on disk and
// every intra-doc fragment resolves to a heading of its target document.
func checkMarkdown(file string, report func(string, ...any)) {
	data, err := os.ReadFile(file)
	if err != nil {
		report("docscheck: %v", err)
		return
	}
	base := filepath.Dir(file)
	for _, m := range mdLink.FindAllStringSubmatch(stripFences(string(data)), -1) {
		dst := m[1]
		switch {
		case strings.HasPrefix(dst, "http://"), strings.HasPrefix(dst, "https://"),
			strings.HasPrefix(dst, "mailto:"):
			continue // external links: not checked
		}
		if strings.HasPrefix(dst, "#") {
			if !anchorsOf(file)[strings.ToLower(dst[1:])] {
				report("%s: dead anchor %q (no matching heading)", file, m[1])
			}
			continue
		}
		frag := ""
		if i := strings.IndexByte(dst, '#'); i >= 0 {
			dst, frag = dst[:i], dst[i+1:] // split a file link's section anchor
		}
		if dst == "" {
			continue
		}
		target := filepath.Join(base, dst)
		if _, err := os.Stat(target); err != nil {
			report("%s: broken link %q", file, m[1])
			continue
		}
		if frag != "" && strings.HasSuffix(dst, ".md") {
			if !anchorsOf(target)[strings.ToLower(frag)] {
				report("%s: dead anchor %q (no matching heading in %s)", file, m[1], dst)
			}
		}
	}
}

// stripFences drops fenced code blocks: link-shaped text inside a
// ```-fenced example is not a link, exactly as a `# comment` inside one
// is not a heading (anchorsOf applies the same walk).
func stripFences(data string) string {
	var b strings.Builder
	inFence := false
	for _, line := range strings.Split(data, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// anchorCache memoises each markdown file's heading slug set.
var anchorCache = map[string]map[string]bool{}

// anchorsOf returns the GitHub-style anchor slugs of every heading in the
// markdown file (fenced code blocks excluded — a `# comment` inside a
// shell snippet is not a heading).
func anchorsOf(file string) map[string]bool {
	if set, ok := anchorCache[file]; ok {
		return set
	}
	set := map[string]bool{}
	data, err := os.ReadFile(file)
	if err == nil {
		for _, line := range strings.Split(stripFences(string(data)), "\n") {
			if m := atxHeading.FindStringSubmatch(line); m != nil {
				set[slugify(m[1])] = true
			}
		}
	}
	anchorCache[file] = set
	return set
}

// slugify converts one heading to its GitHub anchor: lowercase, spaces to
// hyphens, punctuation (other than hyphens and underscores) dropped.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}

// checkExportedDocs parses one package directory (tests excluded) and
// reports exported declarations without doc comments.
func checkExportedDocs(dir string, report func(string, ...any)) {
	fset := token.NewFileSet()
	pkgMap, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		report("docscheck: %s: %v", dir, err)
		return
	}
	for _, pkg := range pkgMap {
		for path, f := range pkg.Files {
			for _, decl := range f.Decls {
				checkDecl(fset, path, decl, report)
			}
		}
	}
}

// checkDecl reports the undocumented exported identifiers of one
// top-level declaration.
func checkDecl(fset *token.FileSet, path string, decl ast.Decl, report func(string, ...any)) {
	pos := func(p token.Pos) string {
		position := fset.Position(p)
		return fmt.Sprintf("%s:%d", path, position.Line)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc.Text() == "" && receiverExported(d) {
			report("%s: exported %s %s has no doc comment", pos(d.Pos()), kindOf(d), d.Name.Name)
		}
	case *ast.GenDecl:
		groupDoc := d.Doc.Text() != ""
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && !groupDoc && s.Doc.Text() == "" {
					report("%s: exported type %s has no doc comment", pos(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				// A doc comment on the const/var block covers its members
				// (the standard Go convention for grouped declarations).
				if groupDoc || s.Doc.Text() != "" || s.Comment.Text() != "" {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report("%s: exported %s %s has no doc comment", pos(s.Pos()), d.Tok, n.Name)
					}
				}
			}
		}
	}
}

// kindOf names a func declaration for the report (func vs method).
func kindOf(d *ast.FuncDecl) string {
	if d.Recv != nil {
		return "method"
	}
	return "func"
}

// receiverExported reports whether d is a plain function or a method on an
// exported type — methods on unexported types are not API surface (the
// same scoping revive's `exported` rule applies).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	return !ok || id.IsExported()
}
