package topology

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"
)

// Source is a feed of backend topologies. Watch returns a channel that
// carries each new backend list; the channel closes when ctx is cancelled
// or the source has nothing further to say (a static source closes after
// its single emission). Consumers apply each received list through one
// update path — apps.Control.Follow drives Service.UpdateBackends — so a
// file watcher, an HTTP poller and an admin PUT all converge on the same
// drain-correct transition.
type Source interface {
	Watch(ctx context.Context) (<-chan []Backend, error)
}

// Static is a Source that emits one fixed backend list and closes. It
// exists so code paths that take a Source can also serve the "-backend
// flags only, no live updates" configuration.
type Static struct {
	// Backends is the list to emit.
	Backends []Backend
}

// Watch implements Source.
func (s Static) Watch(ctx context.Context) (<-chan []Backend, error) {
	ch := make(chan []Backend, 1)
	ch <- append([]Backend(nil), s.Backends...)
	close(ch)
	return ch, nil
}

// File is a Source backed by a topology file in the ParseList format
// ("addr" or "addr weight" per line). It emits the file's content once at
// Watch time if the file is readable, then re-reads on every Trigger
// signal — flickrun wires SIGHUP to Trigger, turning the legacy
// re-read-on-signal behaviour into an ordinary Source. Every successful
// trigger emits, even when the content is unchanged (the operator asked);
// read or parse failures are reported through OnError and skip the
// emission, leaving the last good topology in place.
type File struct {
	// Path is the topology file.
	Path string
	// Trigger signals a re-read (e.g. a SIGHUP notification channel).
	Trigger <-chan struct{}
	// OnError, when non-nil, observes read/parse failures (the source
	// keeps watching).
	OnError func(error)
}

// Watch implements Source.
func (f File) Watch(ctx context.Context) (<-chan []Backend, error) {
	if f.Path == "" {
		return nil, fmt.Errorf("topology: file source needs a path")
	}
	ch := make(chan []Backend, 1)
	// Initial content: the file is the source of truth when present, but a
	// not-yet-written file is fine — the service starts from its flag-given
	// backends and the file takes over at the first trigger.
	if list, err := f.read(); err == nil {
		ch <- list
	} else if !os.IsNotExist(err) {
		f.report(err)
	}
	go func() {
		defer close(ch)
		for {
			select {
			case <-ctx.Done():
				return
			case _, ok := <-f.Trigger:
				if !ok {
					return
				}
				list, err := f.read()
				if err != nil {
					f.report(err)
					continue
				}
				select {
				case ch <- list:
				case <-ctx.Done():
					return
				}
			}
		}
	}()
	return ch, nil
}

func (f File) read() ([]Backend, error) {
	file, err := os.Open(f.Path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	list, err := ParseList(file)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", f.Path, err)
	}
	return list, nil
}

func (f File) report(err error) {
	if f.OnError != nil {
		f.OnError(err)
	}
}

// Poll is a Source that polls an HTTP endpoint serving the DecodeJSON wire
// format — typically another instance's admin GET /topology — and emits
// whenever the decoded list differs from the last emission. A fleet of
// flickruns pointed at one admin endpoint follows its topology within one
// poll interval of a PUT.
type Poll struct {
	// URL is polled with GET.
	URL string
	// Interval between polls (default 2s).
	Interval time.Duration
	// Client overrides http.DefaultClient.
	Client *http.Client
	// OnError, when non-nil, observes fetch/decode failures (polling
	// continues).
	OnError func(error)
}

// maxPollBody bounds a poll response read (a topology is small; a
// misconfigured URL pointing at a large file must not balloon memory).
const maxPollBody = 1 << 20

// Watch implements Source.
func (p Poll) Watch(ctx context.Context) (<-chan []Backend, error) {
	if p.URL == "" {
		return nil, fmt.Errorf("topology: poll source needs a URL")
	}
	interval := p.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	ch := make(chan []Backend, 1)
	go func() {
		defer close(ch)
		t := time.NewTicker(interval)
		defer t.Stop()
		var last []Backend
		for {
			list, err := p.fetch(ctx, client)
			switch {
			case err != nil:
				if ctx.Err() != nil {
					return
				}
				if p.OnError != nil {
					p.OnError(err)
				}
			case !Equal(list, last):
				last = list
				select {
				case ch <- list:
				case <-ctx.Done():
					return
				}
			}
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
		}
	}()
	return ch, nil
}

func (p Poll) fetch(ctx context.Context, client *http.Client) ([]Backend, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.URL, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPollBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("topology: GET %s: %s", p.URL, resp.Status)
	}
	return p.decode(body)
}

func (p Poll) decode(body []byte) ([]Backend, error) {
	list, err := DecodeJSON(body)
	if err != nil {
		return nil, fmt.Errorf("topology: GET %s: %w", p.URL, err)
	}
	return list, nil
}
