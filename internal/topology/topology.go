// Package topology defines the platform's backend-topology model — a list
// of weighted backend endpoints — and the Source abstraction that feeds
// topology changes into a running service from one place, whatever the
// operator's source of truth is: a flat file re-read on SIGHUP, another
// instance's admin endpoint polled over HTTP, or a static list.
//
// The package is deliberately stdlib-only and imports nothing from the
// platform: internal/apps consumes it to drive Service.UpdateBackends, and
// internal/admin serves and accepts its wire forms, so every path from
// "new backend list" to the live ring goes through one representation.
package topology

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Backend is one backend endpoint with its routing weight. Weight scales
// the backend's share of the consistent-hash ring: weight 2 owns twice the
// key space of weight 1, and weight 0 keeps the backend listed but drains
// it (it owns no keys). The JSON form accepts either a bare address string
// (weight 1) or an object {"addr": ..., "weight": ...} with the weight
// defaulting to 1 when absent.
type Backend struct {
	Addr   string `json:"addr"`
	Weight int    `json:"weight"`
}

// UnmarshalJSON accepts both "host:port" (weight 1) and
// {"addr":"host:port","weight":2} (weight 1 when the field is absent; an
// explicit 0 drains).
func (b *Backend) UnmarshalJSON(data []byte) error {
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, `"`) {
		var addr string
		if err := json.Unmarshal(data, &addr); err != nil {
			return err
		}
		*b = Backend{Addr: addr, Weight: 1}
		return nil
	}
	var obj struct {
		Addr   string `json:"addr"`
		Weight *int   `json:"weight"`
	}
	if err := json.Unmarshal(data, &obj); err != nil {
		return err
	}
	w := 1
	if obj.Weight != nil {
		w = *obj.Weight
	}
	*b = Backend{Addr: obj.Addr, Weight: w}
	return nil
}

// Addrs projects the address column of a backend list.
func Addrs(list []Backend) []string {
	out := make([]string, len(list))
	for i, b := range list {
		out[i] = b.Addr
	}
	return out
}

// Weights projects the weight column of a backend list.
func Weights(list []Backend) []int {
	out := make([]int, len(list))
	for i, b := range list {
		out[i] = b.Weight
	}
	return out
}

// Uniform wraps bare addresses as weight-1 backends.
func Uniform(addrs []string) []Backend {
	out := make([]Backend, len(addrs))
	for i, a := range addrs {
		out[i] = Backend{Addr: a, Weight: 1}
	}
	return out
}

// Equal reports whether two backend lists are identical (same addresses,
// same weights, same order).
func Equal(a, b []Backend) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Validate rejects lists no update path should apply: empty lists, empty
// addresses, duplicate addresses, negative weights, and lists whose every
// weight is zero (nothing would own the key space).
func Validate(list []Backend) error {
	if len(list) == 0 {
		return fmt.Errorf("topology: empty backend list")
	}
	seen := make(map[string]bool, len(list))
	positive := false
	for i, b := range list {
		if b.Addr == "" {
			return fmt.Errorf("topology: backend %d has an empty address", i)
		}
		if seen[b.Addr] {
			return fmt.Errorf("topology: duplicate backend %s", b.Addr)
		}
		seen[b.Addr] = true
		if b.Weight < 0 {
			return fmt.Errorf("topology: backend %s has negative weight %d", b.Addr, b.Weight)
		}
		if b.Weight > 0 {
			positive = true
		}
	}
	if !positive {
		return fmt.Errorf("topology: every backend has weight 0 (nothing to route to)")
	}
	return nil
}

// ParseList reads the file topology format: one backend per line as
// "addr" or "addr weight", with blank lines and #-comments skipped.
func ParseList(r io.Reader) ([]Backend, error) {
	var list []Backend
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		b := Backend{Addr: fields[0], Weight: 1}
		switch {
		case len(fields) == 2:
			w, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("topology: line %d: weight %q: %v", line, fields[1], err)
			}
			b.Weight = w
		case len(fields) > 2:
			return nil, fmt.Errorf("topology: line %d: want \"addr\" or \"addr weight\", got %q", line, text)
		}
		list = append(list, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := Validate(list); err != nil {
		return nil, err
	}
	return list, nil
}

// DecodeJSON parses the wire topology format: either a bare JSON array of
// backends or an object with a "backends" field holding one — the shape
// the admin API's PUT /topology accepts and its GET /topology serves, so
// one instance's GET output is another's valid input.
func DecodeJSON(data []byte) ([]Backend, error) {
	trimmed := strings.TrimSpace(string(data))
	var list []Backend
	if strings.HasPrefix(trimmed, "[") {
		if err := json.Unmarshal(data, &list); err != nil {
			return nil, fmt.Errorf("topology: %v", err)
		}
	} else {
		var obj struct {
			Backends []Backend `json:"backends"`
		}
		if err := json.Unmarshal(data, &obj); err != nil {
			return nil, fmt.Errorf("topology: %v", err)
		}
		list = obj.Backends
	}
	if err := Validate(list); err != nil {
		return nil, err
	}
	return list, nil
}
