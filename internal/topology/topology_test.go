package topology

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseList(t *testing.T) {
	in := `
# fleet a
10.0.0.1:11211
10.0.0.2:11211 2
10.0.0.3:11211 0  # draining
`
	list, err := ParseList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []Backend{
		{Addr: "10.0.0.1:11211", Weight: 1},
		{Addr: "10.0.0.2:11211", Weight: 2},
		{Addr: "10.0.0.3:11211", Weight: 0},
	}
	if !Equal(list, want) {
		t.Fatalf("ParseList = %+v, want %+v", list, want)
	}
	for name, bad := range map[string]string{
		"empty":           "# nothing\n",
		"bad weight":      "a:1 two\n",
		"extra field":     "a:1 2 3\n",
		"duplicate":       "a:1\na:1\n",
		"negative weight": "a:1 -2\n",
		"all zero":        "a:1 0\nb:1 0\n",
	} {
		if _, err := ParseList(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: ParseList accepted %q", name, bad)
		}
	}
}

func TestDecodeJSONForms(t *testing.T) {
	want := []Backend{{Addr: "a:1", Weight: 1}, {Addr: "b:1", Weight: 3}}
	for _, in := range []string{
		`["a:1", {"addr":"b:1","weight":3}]`,
		`{"backends":[{"addr":"a:1"},{"addr":"b:1","weight":3}]}`,
	} {
		list, err := DecodeJSON([]byte(in))
		if err != nil {
			t.Fatalf("DecodeJSON(%s): %v", in, err)
		}
		if !Equal(list, want) {
			t.Fatalf("DecodeJSON(%s) = %+v, want %+v", in, list, want)
		}
	}
	// A marshalled list round-trips: GET output is valid PUT input.
	raw, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(back, want) {
		t.Fatalf("round trip = %+v", back)
	}
	if _, err := DecodeJSON([]byte(`{"backends":[]}`)); err == nil {
		t.Fatal("DecodeJSON accepted an empty list")
	}
	if _, err := DecodeJSON([]byte(`[{"addr":"a:1","weight":-1}]`)); err == nil {
		t.Fatal("DecodeJSON accepted a negative weight")
	}
}

func TestStaticSource(t *testing.T) {
	list := Uniform([]string{"a:1", "b:1"})
	ch, err := Static{Backends: list}.Watch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := <-ch
	if !ok || !Equal(got, list) {
		t.Fatalf("static emitted %+v (ok=%v)", got, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("static source emitted twice")
	}
}

func TestFileSource(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	path := filepath.Join(t.TempDir(), "backends.txt")
	if err := os.WriteFile(path, []byte("a:1\nb:1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trigger := make(chan struct{})
	var errs atomic.Int64
	src := File{Path: path, Trigger: trigger, OnError: func(error) { errs.Add(1) }}
	ch, err := src.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	recv := func() []Backend {
		select {
		case l := <-ch:
			return l
		case <-time.After(2 * time.Second):
			t.Fatal("no emission")
			return nil
		}
	}
	if got := recv(); !Equal(got, []Backend{{Addr: "a:1", Weight: 1}, {Addr: "b:1", Weight: 2}}) {
		t.Fatalf("initial content = %+v", got)
	}
	// Unchanged re-read still emits (the operator asked for a reload).
	trigger <- struct{}{}
	recv()
	// A bad file reports through OnError and keeps the source alive.
	if err := os.WriteFile(path, []byte("a:1 nope\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trigger <- struct{}{}
	if err := os.WriteFile(path, []byte("c:1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	trigger <- struct{}{}
	if got := recv(); !Equal(got, []Backend{{Addr: "c:1", Weight: 1}}) {
		t.Fatalf("post-error content = %+v", got)
	}
	if errs.Load() != 1 {
		t.Fatalf("OnError fired %d times, want 1", errs.Load())
	}
	cancel()
	select {
	case _, ok := <-ch:
		if ok {
			t.Fatal("emission after cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("channel not closed after cancel")
	}
}

func TestFileSourceMissingFileStartsEmpty(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trigger := make(chan struct{})
	src := File{Path: filepath.Join(t.TempDir(), "absent.txt"), Trigger: trigger}
	ch, err := src.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case l := <-ch:
		t.Fatalf("absent file emitted %+v", l)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPollSourceEmitsOnChange(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var body atomic.Value
	body.Store(`{"backends":["a:1"]}`)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(body.Load().(string)))
	}))
	defer srv.Close()
	src := Poll{URL: srv.URL, Interval: 10 * time.Millisecond}
	ch, err := src.Watch(ctx)
	if err != nil {
		t.Fatal(err)
	}
	recv := func() []Backend {
		select {
		case l := <-ch:
			return l
		case <-time.After(2 * time.Second):
			t.Fatal("no emission")
			return nil
		}
	}
	if got := recv(); !Equal(got, Uniform([]string{"a:1"})) {
		t.Fatalf("first poll = %+v", got)
	}
	body.Store(`{"backends":["a:1",{"addr":"b:1","weight":2}]}`)
	want := []Backend{{Addr: "a:1", Weight: 1}, {Addr: "b:1", Weight: 2}}
	if got := recv(); !Equal(got, want) {
		t.Fatalf("changed poll = %+v, want %+v", got, want)
	}
	// No further change: nothing else arrives.
	select {
	case l := <-ch:
		t.Fatalf("unchanged topology re-emitted: %+v", l)
	case <-time.After(50 * time.Millisecond):
	}
}
