package types

import (
	"flick/internal/lang"
)

// builtinSig describes a builtin function's signature. Builtins with
// polymorphic parameters use TAny and rely on bespoke checks below.
type builtinSig struct {
	params  []*Type
	result  *Type
	special string // "", "map", "filter", "fold", "ctor"
}

var builtinSigs = map[string]builtinSig{
	"hash":          {params: []*Type{TAny}, result: TInt},
	"len":           {params: []*Type{TAny}, result: TInt},
	"empty_dict":    {params: nil, result: TDictAA},
	"string_to_int": {params: []*Type{TStr}, result: TInt},
	"int_to_string": {params: []*Type{TInt}, result: TStr},
	"instance_id":   {params: nil, result: TInt},
	"split_words":   {params: []*Type{TStr}, result: &Type{Kind: List, Elem: TStr}},
	"to_upper":      {params: []*Type{TStr}, result: TStr},
	"to_lower":      {params: []*Type{TStr}, result: TStr},
	// Bounded higher-order iteration (§3.2): translated to finite loops,
	// the function argument must be a declared first-order function name.
	"map":    {special: "map"},
	"filter": {special: "filter"},
	"fold":   {special: "fold"},
}

// checkNoRecursion rejects direct or indirect recursion by DFS over the
// call graph (including function names passed to map/filter/fold and the
// foldt combine/order arguments).
func (c *checker) checkNoRecursion(prog *lang.Program) error {
	edges := map[string][]string{}
	for _, f := range prog.Funs {
		calls := map[string]bool{}
		collectCalls(f.Body, calls)
		for callee := range calls {
			if _, ok := c.out.Funs[callee]; ok {
				edges[f.Name] = append(edges[f.Name], callee)
			}
		}
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) error
	visit = func(name string) error {
		switch color[name] {
		case grey:
			return errf(c.out.Funs[name].Pos,
				"function %q is recursive (directly or indirectly), which FLICK forbids", name)
		case black:
			return nil
		}
		color[name] = grey
		for _, callee := range edges[name] {
			if err := visit(callee); err != nil {
				return err
			}
		}
		color[name] = black
		return nil
	}
	for _, f := range prog.Funs {
		if err := visit(f.Name); err != nil {
			return err
		}
	}
	return nil
}

// collectCalls records called names, including function-name arguments of
// the iteration builtins.
func collectCalls(stmts []lang.Stmt, out map[string]bool) {
	var walkExpr func(lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch x := e.(type) {
		case *lang.CallExpr:
			out[x.Name] = true
			if x.Name == "map" || x.Name == "filter" || x.Name == "fold" {
				if len(x.Args) > 0 {
					if id, ok := x.Args[0].(*lang.Ident); ok {
						out[id.Name] = true
					}
				}
			}
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *lang.FieldExpr:
			walkExpr(x.X)
		case *lang.IndexExpr:
			walkExpr(x.X)
			walkExpr(x.Index)
		case *lang.BinaryExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *lang.UnaryExpr:
			walkExpr(x.X)
		}
	}
	var walkStmt func(lang.Stmt)
	walkStmt = func(s lang.Stmt) {
		switch x := s.(type) {
		case *lang.LetStmt:
			walkExpr(x.Init)
		case *lang.GlobalStmt:
			walkExpr(x.Init)
		case *lang.AssignStmt:
			walkExpr(x.Target)
			walkExpr(x.Value)
		case *lang.IfStmt:
			walkExpr(x.Cond)
			for _, t := range x.Then {
				walkStmt(t)
			}
			for _, t := range x.Else {
				walkStmt(t)
			}
		case *lang.PipeStmt:
			walkExpr(x.Src)
			for _, st := range x.Stages {
				walkExpr(st)
			}
			if x.Dst != nil {
				walkExpr(x.Dst)
			}
		case *lang.SendStmt:
			walkExpr(x.Value)
			walkExpr(x.Dst)
		case *lang.FoldtStmt:
			out[x.Combine] = true
			out[x.Order] = true
		case *lang.ExprStmt:
			walkExpr(x.X)
		}
	}
	for _, s := range stmts {
		walkStmt(s)
	}
}

// funSig resolves a function's parameter and result types.
func (c *checker) funSig(f *lang.FunDecl) (params []*Type, result *Type, err error) {
	for _, p := range f.Params {
		var t *Type
		if p.Chan != nil {
			t, err = c.chanType(p.Chan)
		} else {
			t, err = c.resolveTypeRef(p.Type)
		}
		if err != nil {
			return nil, nil, err
		}
		params = append(params, t)
	}
	switch len(f.Results) {
	case 0:
		result = TUnit
	case 1:
		result, err = c.resolveTypeRef(f.Results[0])
		if err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, errf(f.Pos, "function %q: multiple results are not supported", f.Name)
	}
	return params, result, nil
}

// checkFun validates one function body.
func (c *checker) checkFun(f *lang.FunDecl) error {
	params, result, err := c.funSig(f)
	if err != nil {
		return err
	}
	sc := newScope(nil)
	for i, p := range f.Params {
		if !sc.declare(p.Name, params[i]) {
			return errf(p.Pos, "parameter %q redeclared", p.Name)
		}
	}
	got, err := c.checkBlock(f.Body, sc, funCtx)
	if err != nil {
		return err
	}
	if result.Kind == Unit {
		return nil // values of trailing expressions are discarded
	}
	if got == nil || got.Kind == Unit {
		return errf(f.Pos, "function %q must end with an expression of type %s", f.Name, result)
	}
	if !compatible(result, got) {
		return errf(f.Pos, "function %q returns %s, declared %s", f.Name, got, result)
	}
	return nil
}

type stmtCtx int

const (
	funCtx stmtCtx = iota
	procCtx
)

// checkBlock checks statements and returns the block's trailing expression
// type (nil when the block does not end in a value).
func (c *checker) checkBlock(stmts []lang.Stmt, sc *scope, ctx stmtCtx) (*Type, error) {
	var last *Type
	for i, s := range stmts {
		t, err := c.checkStmt(s, sc, ctx)
		if err != nil {
			return nil, err
		}
		if i == len(stmts)-1 {
			last = t
		}
	}
	return last, nil
}

// checkStmt returns the statement's value type for trailing-expression
// purposes (nil for non-value statements).
func (c *checker) checkStmt(s lang.Stmt, sc *scope, ctx stmtCtx) (*Type, error) {
	switch x := s.(type) {
	case *lang.GlobalStmt:
		if ctx != procCtx {
			return nil, errf(x.Pos, "global declarations are only allowed in process bodies")
		}
		t, err := c.checkExpr(x.Init, sc)
		if err != nil {
			return nil, err
		}
		if t.Kind != Dict {
			return nil, errf(x.Pos, "global %q must be a dict (the platform's key/value store), got %s", x.Name, t)
		}
		if !sc.declare(x.Name, t) {
			return nil, errf(x.Pos, "global %q redeclared", x.Name)
		}
		return nil, nil

	case *lang.LetStmt:
		t, err := c.checkExpr(x.Init, sc)
		if err != nil {
			return nil, err
		}
		if t.Kind == Unit {
			return nil, errf(x.Pos, "let %q binds a unit value", x.Name)
		}
		if !sc.declare(x.Name, t) {
			return nil, errf(x.Pos, "%q redeclared", x.Name)
		}
		return nil, nil

	case *lang.AssignStmt:
		return nil, c.checkAssign(x, sc)

	case *lang.IfStmt:
		ct, err := c.checkExpr(x.Cond, sc)
		if err != nil {
			return nil, err
		}
		if ct.Kind != Bool {
			return nil, errf(x.Pos, "if condition must be boolean, got %s", ct)
		}
		thenT, err := c.checkBlock(x.Then, newScope(sc), ctx)
		if err != nil {
			return nil, err
		}
		if x.Else == nil {
			return nil, nil
		}
		elseT, err := c.checkBlock(x.Else, newScope(sc), ctx)
		if err != nil {
			return nil, err
		}
		if thenT != nil && elseT != nil && compatible(thenT, elseT) {
			return thenT, nil
		}
		return nil, nil

	case *lang.PipeStmt:
		if ctx == procCtx {
			return nil, c.checkProcPipe(x, sc)
		}
		return nil, c.checkSendPipe(x, sc)

	case *lang.SendStmt:
		return nil, c.checkSend(x.Pos, x.Value, x.Dst, sc)

	case *lang.FoldtStmt:
		if ctx != procCtx {
			return nil, errf(x.Pos, "foldt is only allowed in process bodies")
		}
		return nil, c.checkFoldt(x, sc)

	case *lang.ExprStmt:
		t, err := c.checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		return t, nil
	}
	return nil, errf(s.Position(), "unsupported statement")
}

// checkAssign validates dict-index and record-field stores.
func (c *checker) checkAssign(x *lang.AssignStmt, sc *scope) error {
	vt, err := c.checkExpr(x.Value, sc)
	if err != nil {
		return err
	}
	switch tgt := x.Target.(type) {
	case *lang.IndexExpr:
		bt, err := c.checkExpr(tgt.X, sc)
		if err != nil {
			return err
		}
		if bt.Kind != Dict {
			return errf(tgt.Pos, "cannot assign through index of %s", bt)
		}
		kt, err := c.checkExpr(tgt.Index, sc)
		if err != nil {
			return err
		}
		if !compatible(bt.Key, kt) {
			return errf(tgt.Pos, "dict key is %s, index is %s", bt.Key, kt)
		}
		if !compatible(bt.Val, vt) {
			return errf(x.Pos, "dict value is %s, assigned %s", bt.Val, vt)
		}
		return nil
	case *lang.FieldExpr:
		ft, err := c.checkExpr(tgt, sc)
		if err != nil {
			return err
		}
		if !compatible(ft, vt) {
			return errf(x.Pos, "field %q is %s, assigned %s", tgt.Name, ft, vt)
		}
		return nil
	default:
		return errf(x.Pos, "assignment target must be a dict entry or record field")
	}
}

// checkSendPipe handles `v => ch` written with pipeline syntax in functions.
func (c *checker) checkSendPipe(x *lang.PipeStmt, sc *scope) error {
	if len(x.Stages) != 0 {
		return errf(x.Pos, "pipelines with stages are only allowed in process bodies")
	}
	if x.Dst == nil {
		return errf(x.Pos, "send requires a destination channel")
	}
	return c.checkSend(x.Pos, x.Src, x.Dst, sc)
}

// checkSend validates `value => channel`.
func (c *checker) checkSend(pos lang.Pos, val, dst lang.Expr, sc *scope) error {
	vt, err := c.checkExpr(val, sc)
	if err != nil {
		return err
	}
	dt, err := c.checkExpr(dst, sc)
	if err != nil {
		return err
	}
	if dt.Kind != Chan || dt.Array {
		return errf(pos, "send destination must be a scalar channel, got %s", dt)
	}
	if dt.Send == nil {
		return errf(pos, "cannot send into read-only channel")
	}
	if !compatible(dt.Send, vt) {
		return errf(pos, "channel carries %s, sent %s", dt.Send, vt)
	}
	return nil
}

// checkProcPipe validates `src => f(args) => dst` in a process body.
func (c *checker) checkProcPipe(x *lang.PipeStmt, sc *scope) error {
	st, err := c.checkExpr(x.Src, sc)
	if err != nil {
		return err
	}
	if st.Kind != Chan {
		return errf(x.Pos, "pipeline source must be a channel, got %s", st)
	}
	if st.Recv == nil {
		return errf(x.Pos, "pipeline source channel is write-only")
	}
	cur := st.Recv // message type flowing through the pipeline
	for _, stage := range x.Stages {
		f, ok := c.out.Funs[stage.Name]
		if !ok {
			return errf(stage.Pos, "unknown function %q in pipeline", stage.Name)
		}
		params, result, err := c.funSig(f)
		if err != nil {
			return err
		}
		if len(stage.Args)+1 != len(params) {
			return errf(stage.Pos,
				"stage %q: %d explicit arguments + the message ≠ %d parameters",
				stage.Name, len(stage.Args), len(params))
		}
		for i, a := range stage.Args {
			at, err := c.checkExpr(a, sc)
			if err != nil {
				return err
			}
			if !compatible(params[i], at) {
				return errf(a.Position(), "stage %q argument %d: have %s, want %s",
					stage.Name, i+1, at, params[i])
			}
		}
		msgParam := params[len(params)-1]
		if !compatible(msgParam, cur) {
			return errf(stage.Pos, "stage %q consumes %s, pipeline carries %s",
				stage.Name, msgParam, cur)
		}
		if result.Kind == Unit {
			cur = nil
		} else {
			cur = result
		}
		if cur == nil && stage != x.Stages[len(x.Stages)-1] {
			return errf(stage.Pos, "stage %q returns no value but the pipeline continues", stage.Name)
		}
	}
	if x.Dst != nil {
		if cur == nil {
			return errf(x.Pos, "pipeline has a destination but the last stage returns no value")
		}
		dt, err := c.checkExpr(x.Dst, sc)
		if err != nil {
			return err
		}
		if dt.Kind != Chan || dt.Array {
			return errf(x.Dst.Position(), "pipeline destination must be a scalar channel, got %s", dt)
		}
		if dt.Send == nil {
			return errf(x.Dst.Position(), "pipeline destination channel is read-only")
		}
		if !compatible(dt.Send, cur) {
			return errf(x.Dst.Position(), "destination carries %s, pipeline delivers %s", dt.Send, cur)
		}
	}
	return nil
}

// checkFoldt validates the parallel tree fold (§4.3): combine must be a
// commutative, associative (T,T)→T and order a key extractor (T)→string|int.
func (c *checker) checkFoldt(x *lang.FoldtStmt, sc *scope) error {
	srcT := sc.lookup(x.Src)
	if srcT == nil || srcT.Kind != Chan || !srcT.Array {
		return errf(x.Pos, "foldt source %q must be a channel array", x.Src)
	}
	if srcT.Recv == nil {
		return errf(x.Pos, "foldt source channels are write-only")
	}
	dstT := sc.lookup(x.Dst)
	if dstT == nil || dstT.Kind != Chan || dstT.Array {
		return errf(x.Pos, "foldt destination %q must be a scalar channel", x.Dst)
	}
	if dstT.Send == nil {
		return errf(x.Pos, "foldt destination channel is read-only")
	}
	elem := srcT.Recv

	comb, ok := c.out.Funs[x.Combine]
	if !ok {
		return errf(x.Pos, "unknown combine function %q", x.Combine)
	}
	cp, cr, err := c.funSig(comb)
	if err != nil {
		return err
	}
	if len(cp) != 2 || !compatible(cp[0], elem) || !compatible(cp[1], elem) || !compatible(cr, elem) {
		return errf(x.Pos, "combine %q must have type (%s, %s) -> (%s)", x.Combine, elem, elem, elem)
	}
	ord, ok := c.out.Funs[x.Order]
	if !ok {
		return errf(x.Pos, "unknown ordering function %q", x.Order)
	}
	op, or, err := c.funSig(ord)
	if err != nil {
		return err
	}
	if len(op) != 1 || !compatible(op[0], elem) || (or.Kind != Str && or.Kind != Int) {
		return errf(x.Pos, "ordering %q must have type (%s) -> (string|integer)", x.Order, elem)
	}
	if !compatible(dstT.Send, elem) {
		return errf(x.Pos, "foldt destination carries %s, source elements are %s", dstT.Send, elem)
	}
	return nil
}

// checkProc validates a process declaration.
func (c *checker) checkProc(p *lang.ProcDecl) error {
	sc := newScope(nil)
	globals := map[string]*Type{}
	c.out.GlobalTypes[p.Name] = globals
	for _, ch := range p.Channels {
		t, err := c.chanType(ch.Type)
		if err != nil {
			return err
		}
		if !sc.declare(ch.Name, t) {
			return errf(ch.Pos, "channel %q redeclared", ch.Name)
		}
	}
	for _, s := range p.Body {
		if _, err := c.checkStmt(s, sc, procCtx); err != nil {
			return err
		}
		if g, ok := s.(*lang.GlobalStmt); ok {
			globals[g.Name] = sc.lookup(g.Name)
		}
	}
	return nil
}
