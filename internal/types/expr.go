package types

import (
	"flick/internal/lang"
)

// checkExpr types an expression.
func (c *checker) checkExpr(e lang.Expr, sc *scope) (*Type, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return TInt, nil
	case *lang.StrLit:
		return TStr, nil
	case *lang.BoolLit:
		return TBool, nil
	case *lang.NoneLit:
		return TNone, nil

	case *lang.Ident:
		if t := sc.lookup(x.Name); t != nil {
			return t, nil
		}
		// Niladic builtins may be written without parentheses
		// (Listing 1: `global cache := empty_dict`).
		if sig, ok := builtinSigs[x.Name]; ok && sig.special == "" && len(sig.params) == 0 {
			return sig.result, nil
		}
		return nil, errf(x.Pos, "undefined name %q", x.Name)

	case *lang.FieldExpr:
		xt, err := c.checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		if xt.Kind == Any {
			return TAny, nil
		}
		if xt.Kind != Record {
			return nil, errf(x.Pos, "field access on non-record %s", xt)
		}
		td := c.out.Types[xt.Name]
		for _, f := range td.Fields {
			if f.Name == x.Name {
				return c.fieldType(f), nil
			}
		}
		return nil, errf(x.Pos, "record %q has no field %q", xt.Name, x.Name)

	case *lang.IndexExpr:
		xt, err := c.checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		it, err := c.checkExpr(x.Index, sc)
		if err != nil {
			return nil, err
		}
		switch xt.Kind {
		case Dict:
			if !compatible(xt.Key, it) {
				return nil, errf(x.Pos, "dict key is %s, index is %s", xt.Key, it)
			}
			return xt.Val, nil
		case List:
			if it.Kind != Int {
				return nil, errf(x.Pos, "list index must be integer, got %s", it)
			}
			return xt.Elem, nil
		case Chan:
			if !xt.Array {
				return nil, errf(x.Pos, "indexing a scalar channel")
			}
			if it.Kind != Int {
				return nil, errf(x.Pos, "channel array index must be integer, got %s", it)
			}
			return &Type{Kind: Chan, Recv: xt.Recv, Send: xt.Send}, nil
		case Any:
			return TAny, nil
		default:
			return nil, errf(x.Pos, "cannot index %s", xt)
		}

	case *lang.CallExpr:
		return c.checkCall(x, sc)

	case *lang.BinaryExpr:
		return c.checkBinary(x, sc)

	case *lang.UnaryExpr:
		xt, err := c.checkExpr(x.X, sc)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case lang.TokMinus:
			if xt.Kind != Int && xt.Kind != Any {
				return nil, errf(x.Pos, "unary - on %s", xt)
			}
			return TInt, nil
		case lang.TokNot:
			if xt.Kind != Bool && xt.Kind != Any {
				return nil, errf(x.Pos, "not on %s", xt)
			}
			return TBool, nil
		}
		return nil, errf(x.Pos, "unsupported unary operator")
	}
	return nil, errf(e.Position(), "unsupported expression")
}

// fieldType maps a record field's wire type to a semantic type.
func (c *checker) fieldType(f *lang.FieldDecl) *Type {
	switch f.Type.Name {
	case "integer":
		return TInt
	case "boolean":
		return TBool
	case "bytes":
		return TBytes
	default:
		return TStr
	}
}

// checkCall types user-function calls, record constructors and builtins.
func (c *checker) checkCall(x *lang.CallExpr, sc *scope) (*Type, error) {
	// Record constructor: typeName(field values in declared order).
	if td, ok := c.out.Types[x.Name]; ok {
		var named []*lang.FieldDecl
		for _, f := range td.Fields {
			if f.Name != "" {
				named = append(named, f)
			}
		}
		if len(x.Args) != len(named) {
			return nil, errf(x.Pos, "constructor %q takes %d named fields, got %d arguments",
				x.Name, len(named), len(x.Args))
		}
		for i, a := range x.Args {
			at, err := c.checkExpr(a, sc)
			if err != nil {
				return nil, err
			}
			want := c.fieldType(named[i])
			if !compatible(want, at) {
				return nil, errf(a.Position(), "constructor %q field %q: have %s, want %s",
					x.Name, named[i].Name, at, want)
			}
		}
		return &Type{Kind: Record, Name: x.Name}, nil
	}

	// User-defined function.
	if f, ok := c.out.Funs[x.Name]; ok {
		params, result, err := c.funSig(f)
		if err != nil {
			return nil, err
		}
		if len(x.Args) != len(params) {
			return nil, errf(x.Pos, "%q takes %d arguments, got %d", x.Name, len(params), len(x.Args))
		}
		for i, a := range x.Args {
			at, err := c.checkExpr(a, sc)
			if err != nil {
				return nil, err
			}
			if !compatible(params[i], at) {
				return nil, errf(a.Position(), "%q argument %d: have %s, want %s",
					x.Name, i+1, at, params[i])
			}
		}
		return result, nil
	}

	// Builtins.
	sig, ok := builtinSigs[x.Name]
	if !ok {
		return nil, errf(x.Pos, "unknown function %q", x.Name)
	}
	switch sig.special {
	case "map", "filter", "fold":
		return c.checkIterBuiltin(x, sc, sig.special)
	}
	if len(x.Args) != len(sig.params) {
		return nil, errf(x.Pos, "%q takes %d arguments, got %d", x.Name, len(sig.params), len(x.Args))
	}
	for i, a := range x.Args {
		at, err := c.checkExpr(a, sc)
		if err != nil {
			return nil, err
		}
		if !compatible(sig.params[i], at) {
			return nil, errf(a.Position(), "%q argument %d: have %s, want %s",
				x.Name, i+1, at, sig.params[i])
		}
		// len() accepts only sized things.
		if x.Name == "len" {
			switch at.Kind {
			case Str, Bytes, List, Dict, Any:
			case Chan:
				if !at.Array {
					return nil, errf(a.Position(), "len of scalar channel")
				}
			default:
				return nil, errf(a.Position(), "len of %s", at)
			}
		}
	}
	return sig.result, nil
}

// checkIterBuiltin types map/filter/fold: the function argument must be a
// declared function name (first-order discipline: function values do not
// exist; these forms compile to finite loops, §4.3).
func (c *checker) checkIterBuiltin(x *lang.CallExpr, sc *scope, which string) (*Type, error) {
	wantArgs := 2
	if which == "fold" {
		wantArgs = 3
	}
	if len(x.Args) != wantArgs {
		return nil, errf(x.Pos, "%s takes %d arguments, got %d", which, wantArgs, len(x.Args))
	}
	fid, ok := x.Args[0].(*lang.Ident)
	if !ok {
		return nil, errf(x.Args[0].Position(), "%s's first argument must be a function name", which)
	}
	f, ok := c.out.Funs[fid.Name]
	if !ok {
		return nil, errf(fid.Pos, "unknown function %q", fid.Name)
	}
	params, result, err := c.funSig(f)
	if err != nil {
		return nil, err
	}
	listArg := x.Args[len(x.Args)-1]
	lt, err := c.checkExpr(listArg, sc)
	if err != nil {
		return nil, err
	}
	if lt.Kind != List && lt.Kind != Any {
		return nil, errf(listArg.Position(), "%s iterates a list, got %s", which, lt)
	}
	elem := TAny
	if lt.Kind == List {
		elem = lt.Elem
	}
	switch which {
	case "map":
		if len(params) != 1 || !compatible(params[0], elem) {
			return nil, errf(x.Pos, "map function %q must take one %s", fid.Name, elem)
		}
		if result.Kind == Unit {
			return nil, errf(x.Pos, "map function %q returns no value", fid.Name)
		}
		return &Type{Kind: List, Elem: result}, nil
	case "filter":
		if len(params) != 1 || !compatible(params[0], elem) || result.Kind != Bool {
			return nil, errf(x.Pos, "filter function %q must be a (%s) -> (boolean) predicate", fid.Name, elem)
		}
		return lt, nil
	default: // fold
		accT, err := c.checkExpr(x.Args[1], sc)
		if err != nil {
			return nil, err
		}
		if len(params) != 2 || !compatible(params[0], accT) || !compatible(params[1], elem) || !compatible(accT, result) {
			return nil, errf(x.Pos, "fold function %q must have type (%s, %s) -> (%s)", fid.Name, accT, elem, accT)
		}
		return accT, nil
	}
}

// checkBinary types operators.
func (c *checker) checkBinary(x *lang.BinaryExpr, sc *scope) (*Type, error) {
	lt, err := c.checkExpr(x.L, sc)
	if err != nil {
		return nil, err
	}
	rt, err := c.checkExpr(x.R, sc)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case lang.TokPlus, lang.TokMinus, lang.TokStar, lang.TokSlash, lang.TokMod:
		// `+` concatenates strings as well.
		if x.Op == lang.TokPlus && (lt.Kind == Str || rt.Kind == Str) {
			if isStrOrAny(lt) && isStrOrAny(rt) {
				return TStr, nil
			}
			return nil, errf(x.Pos, "cannot concatenate %s and %s", lt, rt)
		}
		if isIntOrAny(lt) && isIntOrAny(rt) {
			return TInt, nil
		}
		return nil, errf(x.Pos, "arithmetic on %s and %s", lt, rt)

	case lang.TokEq, lang.TokNotEq:
		if lt.Kind == None || rt.Kind == None || lt.Kind == Any || rt.Kind == Any {
			return TBool, nil
		}
		if lt.Kind == rt.Kind {
			if lt.Kind == Record && lt.Name != rt.Name {
				return nil, errf(x.Pos, "comparing %s with %s", lt, rt)
			}
			return TBool, nil
		}
		// string/bytes compare by content.
		if (lt.Kind == Str && rt.Kind == Bytes) || (lt.Kind == Bytes && rt.Kind == Str) {
			return TBool, nil
		}
		return nil, errf(x.Pos, "comparing %s with %s", lt, rt)

	case lang.TokLess, lang.TokGreater, lang.TokLessEq, lang.TokGreaterEq:
		ordered := func(t *Type) bool {
			return t.Kind == Int || t.Kind == Str || t.Kind == Any
		}
		if ordered(lt) && ordered(rt) && (lt.Kind == rt.Kind || lt.Kind == Any || rt.Kind == Any) {
			return TBool, nil
		}
		return nil, errf(x.Pos, "ordering comparison on %s and %s", lt, rt)

	case lang.TokAnd, lang.TokOr:
		if (lt.Kind == Bool || lt.Kind == Any) && (rt.Kind == Bool || rt.Kind == Any) {
			return TBool, nil
		}
		return nil, errf(x.Pos, "boolean operator on %s and %s", lt, rt)
	}
	return nil, errf(x.Pos, "unsupported binary operator")
}

func isIntOrAny(t *Type) bool { return t.Kind == Int || t.Kind == Any }
func isStrOrAny(t *Type) bool { return t.Kind == Str || t.Kind == Any || t.Kind == Bytes }
