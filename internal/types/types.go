// Package types implements the FLICK static type checker. The language is
// strongly and statically typed for safety (§4.3); beyond conventional
// checking, this package enforces the restrictions that make FLICK programs
// safe to schedule cooperatively:
//
//   - functions are first-order and may not recurse, directly or indirectly
//     (§3.2 "User-defined functions in FLICK are restricted to be
//     first-order and cannot be recursive"),
//   - iteration exists only through the bounded builtins map/filter/fold
//     over finite lists — the grammar has no loop statement at all,
//   - channel direction annotations are enforced (a write-only channel
//     cannot be read, §4.1's test_cache),
//   - serialisation annotations may reference only earlier integer fields.
//
// Together with finite input these guarantee every task activation
// terminates, which is what lets the platform run task graphs without
// preemption or isolation (§5).
package types

import (
	"fmt"

	"flick/internal/lang"
)

// Kind enumerates semantic types.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	Unit
	Int
	Str
	Bool
	Bytes
	None
	Record
	Dict
	List
	Chan
	Any
)

func (k Kind) String() string {
	switch k {
	case Invalid:
		return "invalid"
	case Unit:
		return "unit"
	case Int:
		return "integer"
	case Str:
		return "string"
	case Bool:
		return "boolean"
	case Bytes:
		return "bytes"
	case None:
		return "None"
	case Record:
		return "record"
	case Dict:
		return "dict"
	case List:
		return "list"
	case Chan:
		return "channel"
	case Any:
		return "any"
	}
	return "?"
}

// Type is a semantic type.
type Type struct {
	Kind  Kind
	Name  string // record type name
	Elem  *Type  // list element
	Key   *Type  // dict key
	Val   *Type  // dict value
	Recv  *Type  // channel produce side (nil when write-only)
	Send  *Type  // channel accept side (nil when read-only)
	Array bool   // channel array
}

// Dir derives a channel type's direction from its populated sides.
func (t *Type) Dir() lang.ChanDir {
	switch {
	case t.Recv == nil:
		return lang.ChanWrite
	case t.Send == nil:
		return lang.ChanRead
	default:
		return lang.ChanBoth
	}
}

// Convenient singletons.
var (
	TInt    = &Type{Kind: Int}
	TStr    = &Type{Kind: Str}
	TBool   = &Type{Kind: Bool}
	TBytes  = &Type{Kind: Bytes}
	TUnit   = &Type{Kind: Unit}
	TNone   = &Type{Kind: None}
	TAny    = &Type{Kind: Any}
	TDictAA = &Type{Kind: Dict, Key: TAny, Val: TAny}
)

// String renders the type.
func (t *Type) String() string {
	switch t.Kind {
	case Record:
		return t.Name
	case Dict:
		return "dict<" + t.Key.String() + "*" + t.Val.String() + ">"
	case List:
		return "list<" + t.Elem.String() + ">"
	case Chan:
		r, s := "-", "-"
		if t.Recv != nil {
			r = t.Recv.String()
		}
		if t.Send != nil {
			s = t.Send.String()
		}
		core := r + "/" + s
		if t.Array {
			return "[" + core + "]"
		}
		return core
	default:
		return t.Kind.String()
	}
}

// compatible reports whether a value of type got can be supplied where want
// is expected. Any unifies with everything; None is accepted where dict
// values flow (lookup misses).
func compatible(want, got *Type) bool {
	if want.Kind == Any || got.Kind == Any {
		return true
	}
	if want.Kind != got.Kind {
		return false
	}
	switch want.Kind {
	case Record:
		return want.Name == got.Name
	case Dict:
		return compatible(want.Key, got.Key) && compatible(want.Val, got.Val)
	case List:
		return compatible(want.Elem, got.Elem)
	case Chan:
		if want.Array != got.Array {
			return false
		}
		// Each capability the target requires must be provided with a
		// compatible type; a bidirectional channel may flow where a
		// restricted one is expected, never the reverse (§4.1).
		if want.Recv != nil && (got.Recv == nil || !compatible(want.Recv, got.Recv)) {
			return false
		}
		if want.Send != nil && (got.Send == nil || !compatible(want.Send, got.Send)) {
			return false
		}
		return true
	}
	return true
}

// Checked is the result of a successful check: symbol tables the compiler
// consumes.
type Checked struct {
	Prog  *lang.Program
	Types map[string]*lang.TypeDecl
	Funs  map[string]*lang.FunDecl
	Procs map[string]*lang.ProcDecl
	// GlobalTypes maps proc name → global name → type.
	GlobalTypes map[string]map[string]*Type
}

// Check validates a parsed program.
func Check(prog *lang.Program) (*Checked, error) {
	c := &checker{
		out: &Checked{
			Prog:        prog,
			Types:       map[string]*lang.TypeDecl{},
			Funs:        map[string]*lang.FunDecl{},
			Procs:       map[string]*lang.ProcDecl{},
			GlobalTypes: map[string]map[string]*Type{},
		},
	}
	if err := c.collect(prog); err != nil {
		return nil, err
	}
	if err := c.checkNoRecursion(prog); err != nil {
		return nil, err
	}
	for _, f := range prog.Funs {
		if err := c.checkFun(f); err != nil {
			return nil, err
		}
	}
	for _, p := range prog.Procs {
		if err := c.checkProc(p); err != nil {
			return nil, err
		}
	}
	return c.out, nil
}

type checker struct {
	out *Checked
}

// scope is a lexical environment.
type scope struct {
	parent *scope
	names  map[string]*Type
}

func newScope(parent *scope) *scope {
	return &scope{parent: parent, names: map[string]*Type{}}
}

func (s *scope) lookup(name string) *Type {
	for sc := s; sc != nil; sc = sc.parent {
		if t, ok := sc.names[name]; ok {
			return t
		}
	}
	return nil
}

func (s *scope) declare(name string, t *Type) bool {
	if _, ok := s.names[name]; ok {
		return false
	}
	s.names[name] = t
	return true
}

// collect gathers declarations and validates type declarations.
func (c *checker) collect(prog *lang.Program) error {
	for _, td := range prog.Types {
		if _, dup := c.out.Types[td.Name]; dup {
			return errf(td.Pos, "type %q redeclared", td.Name)
		}
		if isBaseType(td.Name) {
			return errf(td.Pos, "type %q shadows a built-in type", td.Name)
		}
		c.out.Types[td.Name] = td
	}
	for _, td := range prog.Types {
		if err := c.checkTypeDecl(td); err != nil {
			return err
		}
	}
	for _, f := range prog.Funs {
		if _, dup := c.out.Funs[f.Name]; dup {
			return errf(f.Pos, "function %q redeclared", f.Name)
		}
		if _, isB := builtinSigs[f.Name]; isB {
			return errf(f.Pos, "function %q shadows a builtin", f.Name)
		}
		if _, isT := c.out.Types[f.Name]; isT {
			return errf(f.Pos, "function %q collides with type %q", f.Name, f.Name)
		}
		c.out.Funs[f.Name] = f
	}
	for _, p := range prog.Procs {
		if _, dup := c.out.Procs[p.Name]; dup {
			return errf(p.Pos, "process %q redeclared", p.Name)
		}
		c.out.Procs[p.Name] = p
	}
	return nil
}

func isBaseType(name string) bool {
	switch name {
	case "integer", "string", "boolean", "bytes", "dict", "list":
		return true
	}
	return false
}

// checkTypeDecl validates record fields and serialisation annotations.
func (c *checker) checkTypeDecl(td *lang.TypeDecl) error {
	if len(td.Fields) == 0 {
		return errf(td.Pos, "record %q has no fields", td.Name)
	}
	seen := map[string]bool{}
	intFields := map[string]bool{} // earlier integer fields usable in sizes
	for _, f := range td.Fields {
		if f.Name != "" {
			if seen[f.Name] {
				return errf(f.Pos, "field %q redeclared in record %q", f.Name, td.Name)
			}
			seen[f.Name] = true
		}
		switch f.Type.Name {
		case "integer", "string", "bytes", "boolean":
		default:
			return errf(f.Pos, "record field %q has unsupported wire type %q", f.Name, f.Type.Name)
		}
		for _, a := range f.Attrs {
			switch a.Name {
			case "size":
				if err := c.checkSizeExpr(a.Value, intFields); err != nil {
					return err
				}
			case "signed":
				if _, ok := a.Value.(*lang.BoolLit); !ok {
					return errf(f.Pos, "signed annotation on %q must be true or false", f.Name)
				}
			default:
				return errf(f.Pos, "unknown annotation %q on field %q", a.Name, f.Name)
			}
		}
		if f.Type.Name == "integer" && f.Name != "" {
			intFields[f.Name] = true
		}
	}
	return nil
}

// checkSizeExpr restricts size annotations to integer arithmetic over
// constants and earlier integer fields.
func (c *checker) checkSizeExpr(e lang.Expr, intFields map[string]bool) error {
	switch x := e.(type) {
	case *lang.IntLit:
		return nil
	case *lang.Ident:
		if !intFields[x.Name] {
			return errf(x.Pos, "size expression references %q, which is not an earlier integer field", x.Name)
		}
		return nil
	case *lang.BinaryExpr:
		switch x.Op {
		case lang.TokPlus, lang.TokMinus, lang.TokStar:
		default:
			return errf(x.Pos, "size expressions support only + - *")
		}
		if err := c.checkSizeExpr(x.L, intFields); err != nil {
			return err
		}
		return c.checkSizeExpr(x.R, intFields)
	default:
		return errf(e.Position(), "unsupported size expression")
	}
}

// resolveTypeRef converts syntax to a semantic type.
func (c *checker) resolveTypeRef(tr *lang.TypeRef) (*Type, error) {
	switch tr.Name {
	case "integer":
		return TInt, nil
	case "string":
		return TStr, nil
	case "boolean":
		return TBool, nil
	case "bytes":
		return TBytes, nil
	case "dict":
		k, err := c.resolveTypeRef(tr.Args[0])
		if err != nil {
			return nil, err
		}
		v, err := c.resolveTypeRef(tr.Args[1])
		if err != nil {
			return nil, err
		}
		return &Type{Kind: Dict, Key: k, Val: v}, nil
	case "list":
		e, err := c.resolveTypeRef(tr.Args[0])
		if err != nil {
			return nil, err
		}
		return &Type{Kind: List, Elem: e}, nil
	default:
		if _, ok := c.out.Types[tr.Name]; !ok {
			return nil, errf(tr.Pos, "unknown type %q", tr.Name)
		}
		return &Type{Kind: Record, Name: tr.Name}, nil
	}
}

func (c *checker) chanType(ct *lang.ChanType) (*Type, error) {
	t := &Type{Kind: Chan, Array: ct.Array}
	if ct.Recv != "" {
		if _, ok := c.out.Types[ct.Recv]; !ok {
			return nil, errf(ct.Pos, "channel element type %q is not declared", ct.Recv)
		}
		t.Recv = &Type{Kind: Record, Name: ct.Recv}
	}
	if ct.Send != "" {
		if _, ok := c.out.Types[ct.Send]; !ok {
			return nil, errf(ct.Pos, "channel element type %q is not declared", ct.Send)
		}
		t.Send = &Type{Kind: Record, Name: ct.Send}
	}
	return t, nil
}

func errf(pos lang.Pos, format string, args ...any) error {
	return &lang.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
