package types

import (
	"strings"
	"testing"

	"flick/internal/lang"
)

func check(t *testing.T, src string) (*Checked, error) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(prog)
}

func mustCheck(t *testing.T, src string) *Checked {
	t.Helper()
	out, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return out
}

func mustFail(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("check succeeded, want error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSubstr)
	}
}

func TestCheckListing1(t *testing.T) {
	out := mustCheck(t, lang.Listing1)
	if len(out.Types) != 1 || len(out.Funs) != 2 || len(out.Procs) != 1 {
		t.Fatal("symbol tables")
	}
	if out.GlobalTypes["memcached"]["cache"] == nil {
		t.Fatal("global cache type not recorded")
	}
}

func TestCheckListing3(t *testing.T) {
	mustCheck(t, lang.Listing3)
}

func TestRecursionRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (x: t) -> (t)
    g(x)

fun g: (x: t) -> (t)
    f(x)
`, "recursive")
}

func TestDirectRecursionRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (x: t) -> (t)
    f(x)
`, "recursive")
}

func TestRecursionViaMapRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : string

fun f: (xs: t) -> (t)
    g(xs)

fun g: (x: t) -> (t)
    h(x)

fun h: (x: t) -> (t)
    fold(f, x, map(g, split_words(x.a)))
`, "recursive")
}

func TestUnknownTypeRejected(t *testing.T) {
	mustFail(t, `
fun f: (x: ghost) -> ()
    x
`, "unknown type")
}

func TestUnknownFieldRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (x: t) -> (integer)
    x.missing
`, "no field")
}

func TestReadOnlyChannelSendRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (t/- src, x: t) -> ()
    x => src
`, "read-only")
}

func TestWriteOnlyPipelineSourceRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

proc p: (-/t sink, t/t client)
    | sink => client
`, "write-only")
}

func TestChannelElementMismatchRejected(t *testing.T) {
	mustFail(t, `
type a: record
    x : integer
type b: record
    y : integer

fun f: (-/a out, v: b) -> ()
    v => out
`, "channel carries")
}

func TestReturnTypeMismatch(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (x: t) -> (integer)
    "nope"
`, "returns string")
}

func TestMissingReturnValue(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (x: t) -> (integer)
    let y = 1
`, "must end with an expression")
}

func TestGlobalOnlyInProc(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (x: t) -> ()
    global g := empty_dict
`, "only allowed in process bodies")
}

func TestGlobalMustBeDict(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

proc p: (t/t c)
    global g := 5
    | c => c
`, "must be a dict")
}

func TestStageArityChecked(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

proc p: (t/t c)
    | c => f(1, 2) => c

fun f: (x: t) -> (t)
    x
`, "parameters")
}

func TestStageMessageTypeChecked(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer
type u: record
    b : integer

proc p: (t/t c)
    | c => f() => c

fun f: (x: u) -> (u)
    x
`, "consumes")
}

func TestPipelineDestinationAfterUnitStage(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

proc p: (t/t c)
    | c => f() => c

fun f: (x: t) -> ()
    let y = 1
`, "returns no value")
}

func TestFoldtSignatureChecked(t *testing.T) {
	mustFail(t, `
type kv: record
    key : string
    value : string

proc p: ([kv/-] mappers, -/kv reducer)
    foldt bad key_of mappers => reducer

fun bad: (a: kv) -> (kv)
    a

fun key_of: (e: kv) -> (string)
    e.key
`, "combine")
}

func TestFoldtOrderingChecked(t *testing.T) {
	mustFail(t, `
type kv: record
    key : string
    value : string

proc p: ([kv/-] mappers, -/kv reducer)
    foldt comb badorder mappers => reducer

fun comb: (a: kv, b: kv) -> (kv)
    a

fun badorder: (e: kv) -> (kv)
    e
`, "ordering")
}

func TestFoldtSourceMustBeArray(t *testing.T) {
	mustFail(t, `
type kv: record
    key : string
    value : string

proc p: (kv/- mapper, -/kv reducer)
    foldt comb key_of mapper => reducer

fun comb: (a: kv, b: kv) -> (kv)
    a

fun key_of: (e: kv) -> (string)
    e.key
`, "channel array")
}

func TestDictKeyTypeChecked(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (cache: ref dict<string*t>, x: t) -> ()
    cache[x.a] := x
`, "dict key")
}

func TestIfConditionMustBeBool(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (x: t) -> ()
    if x.a:
        let y = 1
`, "boolean")
}

func TestArithmeticTypeErrors(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer
    s : string

fun f: (x: t) -> (integer)
    x.s * 3
`, "arithmetic")
}

func TestStringConcatAllowed(t *testing.T) {
	mustCheck(t, `
type t: record
    a : string

fun f: (x: t) -> (string)
    x.a + "suffix"
`)
}

func TestCompareStringWithIntRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer
    s : string

fun f: (x: t) -> (boolean)
    x.s = x.a
`, "comparing")
}

func TestNoneComparableWithDictLookup(t *testing.T) {
	mustCheck(t, `
type t: record
    k : string

fun f: (cache: ref dict<string*t>, x: t) -> (boolean)
    cache[x.k] = None
`)
}

func TestRecordConstructor(t *testing.T) {
	mustCheck(t, `
type kv: record
    key : string
    value : string

fun f: (a: kv) -> (kv)
    kv(a.key, a.value)
`)
	mustFail(t, `
type kv: record
    key : string
    value : string

fun f: (a: kv) -> (kv)
    kv(a.key)
`, "constructor")
}

func TestRecordConstructorSkipsAnonymous(t *testing.T) {
	// The constructor takes only named fields; anonymous padding is
	// filled in by the serialiser.
	mustCheck(t, `
type msg: record
    a : integer {size=1}
    _ : string {size=3}
    b : string {size=4}

fun f: (m: msg) -> (msg)
    msg(m.a, m.b)
`)
}

func TestDuplicateDeclarations(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer
type t: record
    b : integer
`, "redeclared")
	mustFail(t, `
type t: record
    a : integer

fun f: (x: t) -> (t)
    x
fun f: (x: t) -> (t)
    x
`, "redeclared")
}

func TestBuiltinShadowRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun hash: (x: t) -> (integer)
    1
`, "shadows a builtin")
}

func TestSizeExprValidation(t *testing.T) {
	mustFail(t, `
type t: record
    s : string {size=later}
    later : integer {size=1}
`, "earlier integer field")
	mustFail(t, `
type t: record
    a : integer {size=1}
    s : string {size=a/2}
`, "only + - *")
}

func TestMapFilterFold(t *testing.T) {
	mustCheck(t, `
type doc: record
    text : string

fun upper_len: (w: string) -> (integer)
    len(w)

fun is_long: (w: string) -> (boolean)
    len(w) > 3

fun add: (acc: integer, w: string) -> (integer)
    acc + len(w)

fun f: (d: doc) -> (integer)
    let words = split_words(d.text)
    let lens = map(upper_len, words)
    let longs = filter(is_long, words)
    fold(add, 0, longs)
`)
}

func TestMapNeedsFunctionName(t *testing.T) {
	mustFail(t, `
type doc: record
    text : string

fun f: (d: doc) -> (integer)
    len(map(5, split_words(d.text)))
`, "function name")
}

func TestLenOnScalarChannelRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (-/t out, x: t) -> (integer)
    len(out)
`, "len of scalar channel")
}

func TestUndefinedNameRejected(t *testing.T) {
	mustFail(t, `
type t: record
    a : integer

fun f: (x: t) -> (integer)
    ghost
`, "undefined name")
}

func TestHTTPStyleProgramChecks(t *testing.T) {
	// The HTTP LB declares only the fields it touches (§4.2: explicit
	// field accesses let the compiler prune the parser).
	mustCheck(t, `
type request: record
    uri : string
    keep_alive : integer

proc http_lb: (request/request client, [request/request] backends)
    | client => route(backends)
    | backends => client

fun route: ([-/request] backends, req: request) -> ()
    let target = instance_id() mod len(backends)
    req => backends[target]
`)
}
