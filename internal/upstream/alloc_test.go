package upstream

import (
	"io"
	"testing"

	"flick/internal/buffer"
	"flick/internal/netstack"
)

// TestLeasedSessionZeroAlloc is the alloc-regression gate for the shared
// upstream hot path: one request/response round trip over a leased session
// — write-side framing + FIFO reservation + vectored forward, event-driven
// demultiplex, zero-copy view delivery, session read — adds zero heap
// allocations per request in steady state. The UserNet transport runs its
// readable callbacks inline, so the whole path executes synchronously on
// this goroutine and the measurement is deterministic.
func TestLeasedSessionZeroAlloc(t *testing.T) {
	u := netstack.NewUserNet()
	pool := buffer.NewPool(64)
	pool.Prime(16)
	l, err := u.Listen("be:alloc")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	m := NewManager(Config{
		Transport:      u,
		Pool:           pool,
		Size:           1,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
	})
	defer m.Close()
	sess, err := m.Lease("be:alloc")
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	be, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()

	reqWire := frame("get key-000042")
	respWire := frame("VALUE key-000042 hello")
	rbuf := make([]byte, len(reqWire))
	sbuf := make([]byte, len(respWire))

	allocs := testing.AllocsPerRun(1000, func() {
		if _, err := sess.Write(reqWire); err != nil {
			t.Fatalf("session write: %v", err)
		}
		if _, err := io.ReadFull(be, rbuf); err != nil {
			t.Fatalf("backend read: %v", err)
		}
		// The backend's write runs the demux callback inline: by the time
		// Write returns, the response view sits in the session's queue.
		if _, err := be.Write(respWire); err != nil {
			t.Fatalf("backend write: %v", err)
		}
		n, err := sess.TryRead(sbuf)
		if err != nil || n != len(respWire) {
			t.Fatalf("session read: n=%d err=%v", n, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("leased-session round trip allocates %.1f/op, want 0", allocs)
	}
	if s := pool.Stats(); s.Oversized != 0 {
		t.Fatalf("hot path hit the over-MaxClass fallback %d times", s.Oversized)
	}
	// The latency instrumentation is always on: every measured round trip
	// must have been recorded in the live histogram at zero alloc cost.
	if n := m.Latency().Count(); n < 1000 {
		t.Fatalf("upstream latency histogram recorded %d round trips, want >= 1000", n)
	}
}
