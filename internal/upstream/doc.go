// Package upstream is the sharded upstream connection layer: per-backend
// pools of persistent, pipelined connections that many client task graphs
// multiplex over, replacing the per-client backend dial of the naive graph
// dispatcher ("creates new output channel connections to forward processed
// traffic", §5).
//
// A Manager owns Config.Shards independent shards — one per scheduler
// worker in the platform's default wiring — each holding one pool per
// backend address. Each pool holds up to Size long-lived sockets; LeaseOn
// (addr, worker) hands out a lightweight virtual connection (a Session —
// net.Conn-shaped, so instance binding is untouched at the type level)
// pinned to a socket of the worker's shard, so the write path of a task
// graph never takes a lock another core holds. Requests from all sessions
// of a socket are framed, counted into a FIFO, and written through a
// single serialised writer; the demultiplexer frames the pipelined
// response stream and routes each response view to the session at the
// FIFO head. This matches the FIFO request/response discipline of
// memcached-binary and HTTP/1.1 backends, which answer a connection's
// requests in arrival order. A shard whose backend sockets are down
// borrows a live sibling-shard socket before failing fast (shardsteals).
//
// # Request-aware framing
//
// Framing is a per-protocol pair, not a single length function. The
// RequestFramer runs under the write lock and returns, besides the frame
// length, a Context — an opaque word recording whatever the protocol
// needs to frame the matching response (HTTP: the method class, so a
// HEAD's 200-with-Content-Length is known to be header-only; memcached:
// the terminator opcode and opaque of a GetQ/GetKQ quiet run, which
// travels as ONE framed unit and one FIFO slot). Each FIFO entry carries
// its context, and the demultiplexer passes the head entry's context to
// the ResponseFramer, which is how bodiless statuses (204, 304 with an
// entity Content-Length), 1xx interim responses, chunked
// transfer-encoding, and silent quiet-get misses demultiplex correctly.
// Protocols whose framing is request-blind adapt a plain Framer with
// StatelessRequest / StatelessResponse. A response stream the framer
// cannot delimit (connection-close framing, a 101 upgrade) must return an
// error rather than a guess: the socket fails loudly and every session on
// it EOFs, which is always recoverable — a truncated or misattributed
// response is not.
//
// # Zero-copy / ownership invariants
//
// The data path is zero-copy end to end: backend bytes land in pooled
// refcounted chunks (buffer.Ref), each complete response becomes a
// retained sub-view (Queue.TakeRef), and views ride buffer.Queue
// hand-overs (AppendView / DrainTo) into the leasing instance's parse
// queue without a copy. Ownership of a delivered view passes to the
// session's inbound queue and from there, by reference, to the consumer;
// a session closed before delivery drops (Releases) the view itself, so
// every region's refcount balances whether or not its response was read.
// Writes stage caller memory by reference only within the locked write
// call; a trailing partial request is copied into pooled memory the
// session owns (compactTail) before the lock is released.
//
// # Failure handling and topology
//
// Dialling is lazy (a pool socket is established by the lease that needs
// it), a failed dial opens a doubling backoff window during which leases
// fail fast, and a mid-stream socket failure EOFs every session
// multiplexed on it — exactly what a dedicated backend connection dying
// looks like, so instance teardown is unchanged. Two extensions make the
// backend set dynamic:
//
//   - Health probes (Config.Probe / ProbeInterval): a manager timer
//     re-dials empty or broken slots in the background and round-trips a
//     protocol no-op (memcache.ProbeRequest, http.ProbeRequest), closing
//     fail-fast windows — and pre-warming new backends — before a client
//     lease pays for the discovery. Probes run once per backend (through
//     one shard's pool) and broadcast their verdict to every shard —
//     including a verify round trip on a live socket when only a sibling
//     shard's window is open — so probe traffic does not multiply with
//     the shard count.
//   - Live topology (SetBackends): per shard, pools are created for
//     added addresses and retired for removed ones. A retired pool
//     refuses new leases (ErrRetired) while in-flight sessions finish on
//     their original socket; each drained socket closes as its last
//     session detaches.
//
// # Counters
//
// Manager.Counters exposes the layer as a metrics.CounterSet:
//
//	dials        sockets established (bounded by pool size × shards × backends)
//	reuse        leases served by an already-live socket
//	inflight     unanswered pipelined requests right now (gauge)
//	redials      sockets re-established after a failure
//	failfast     leases rejected during a backoff window
//	probes       successful background probe round trips
//	drained      sockets closed by topology drain
//	shardhits    leases served by the caller's own shard
//	shardsteals  leases borrowed from a sibling shard's live socket
package upstream
