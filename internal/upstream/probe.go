package upstream

import (
	"time"
)

// SetBackends reconciles the manager's pool set with a new backend
// topology. Pools are created for added addresses — making them probe
// targets at once, so their sockets are pre-established before the first
// lease — and retired for removed ones: a retired pool refuses new
// leases, while sessions already leased keep using their socket until
// they close (an in-flight request always completes on the socket it was
// written to). Each retired socket closes as its last session detaches,
// counted by the drained counter.
//
// After the first call the manager is topology-managed: leases to
// addresses outside the current set fail with ErrRetired instead of
// lazily dialling a backend the topology no longer owns.
func (m *Manager) SetBackends(addrs []string) {
	if m.closed.Load() {
		return
	}
	want := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		want[a] = true
	}
	m.mu.Lock()
	m.want = want
	var retired []*pool
	for a, p := range m.pools {
		if !want[a] {
			retired = append(retired, p)
			delete(m.pools, a)
			// Track until its last socket closes: Manager.Close must be
			// able to sweep a pool that is gone from the address map but
			// still owns draining sockets.
			m.draining[p] = struct{}{}
		}
	}
	for a := range want {
		if m.pools[a] == nil {
			m.pools[a] = newPool(m, a)
		}
	}
	m.mu.Unlock()
	for _, p := range retired {
		p.retire()
		m.reapDrained(p)
	}
}

// reapDrained drops a retired pool from the draining set once no live
// socket remains — and none can appear: a slot with a dial in flight
// counts as live (the dial may still install a socket; its own retired
// re-check will fail it and call back here).
func (m *Manager) reapDrained(p *pool) {
	p.mu.Lock()
	done := true
	for i, c := range p.slots {
		if p.dialing[i] || (c != nil && !c.isBroken()) {
			done = false
			break
		}
	}
	p.mu.Unlock()
	if !done {
		return
	}
	m.mu.Lock()
	delete(m.draining, p)
	m.mu.Unlock()
}

// retire marks the pool draining and closes any socket that already has no
// sessions; the rest drain as their sessions detach (conn.maybeDrain).
func (p *pool) retire() {
	p.mu.Lock()
	p.retired = true
	conns := make([]*conn, 0, len(p.slots))
	for _, c := range p.slots {
		if c != nil {
			conns = append(conns, c)
		}
	}
	p.cond.Broadcast() // leases waiting out a dial must observe retirement
	p.mu.Unlock()
	for _, c := range conns {
		c.maybeDrain()
	}
}

// probeLoop drives background health probing (Config.Probe): each tick,
// every empty or broken pool slot is dialled and round-tripped. A
// successful probe repairs the slot in place — the dial resets the pool's
// backoff, so the fail-fast window closes — and leaves the socket live
// for the next lease; probes therefore double as connection pre-warming
// for freshly added backends. Probe dials deliberately ignore the backoff
// gate: the gate exists so clients never wait on a dead backend's connect
// timeout, and the probe goroutine is exactly the place where that wait
// is free.
func (m *Manager) probeLoop() {
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-t.C:
			m.probeAll()
		}
	}
}

// probeAll sweeps every pool once. Pools probe concurrently (one
// goroutine each, never overlapping per pool): a single blackholed
// backend spending its OS connect timeout must not head-of-line block
// the probing — and pre-warming — of every other backend.
func (m *Manager) probeAll() {
	m.mu.Lock()
	pools := make([]*pool, 0, len(m.pools))
	for _, p := range m.pools {
		pools = append(pools, p)
	}
	m.mu.Unlock()
	for _, p := range pools {
		if m.closed.Load() {
			return
		}
		p.mu.Lock()
		busy := p.probing || p.retired
		if !busy {
			p.probing = true
		}
		p.mu.Unlock()
		if busy {
			continue // last tick's sweep of this pool is still running
		}
		go func(p *pool) {
			for slot := range p.slots {
				p.probeSlot(slot)
			}
			p.mu.Lock()
			p.probing = false
			p.mu.Unlock()
		}(p)
	}
}

// probeSlot re-establishes one dead slot and verifies the backend answers.
func (p *pool) probeSlot(slot int) {
	p.mu.Lock()
	if p.retired || p.dialing[slot] {
		p.mu.Unlock()
		return
	}
	if c := p.slots[slot]; c != nil && !c.isBroken() {
		p.mu.Unlock()
		return
	}
	// dialSlot releases p.mu; on failure it re-arms the backoff window so
	// leases keep failing fast until a later probe succeeds.
	s, err := p.dialSlot(slot)
	if err != nil {
		return
	}
	if err := p.m.probeSession(s); err != nil {
		// Connected but not answering: break the socket so no lease lands
		// on a half-dead backend; the next probe tick re-dials.
		s.c.fail(err)
		s.Close()
		return
	}
	p.m.probes.Inc()
	s.Close()
}

// probeSession round-trips the configured no-op request on a fresh
// session. Any framed response counts as alive — the probe checks
// liveness, not semantics.
func (m *Manager) probeSession(s *Session) error {
	if _, err := s.Write(m.cfg.Probe); err != nil {
		return err
	}
	s.SetReadDeadline(time.Now().Add(m.cfg.ProbeTimeout))
	var buf [256]byte
	_, err := s.Read(buf[:])
	return err
}
