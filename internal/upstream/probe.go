package upstream

import (
	"time"
)

// SetBackends reconciles every shard's pool set with a new backend
// topology. Per shard, pools are created for added addresses — making
// them probe targets at once, so their sockets are pre-established before
// the first lease — and retired for removed ones: a retired pool refuses
// new leases, while sessions already leased keep using their socket until
// they close (an in-flight request always completes on the socket it was
// written to). Each retired socket closes as its last session detaches,
// counted by the drained counter.
//
// After the first call the manager is topology-managed: leases to
// addresses outside the current set fail with ErrRetired instead of
// lazily dialling a backend the topology no longer owns.
func (m *Manager) SetBackends(addrs []string) {
	if m.closed.Load() {
		return
	}
	for _, sh := range m.shards {
		sh.setBackends(addrs)
	}
}

// setBackends applies the topology to one shard.
func (sh *shard) setBackends(addrs []string) {
	want := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		want[a] = true
	}
	sh.mu.Lock()
	sh.want = want
	var retired []*pool
	for a, p := range sh.pools {
		if !want[a] {
			retired = append(retired, p)
			delete(sh.pools, a)
			// Track until its last socket closes: Manager.Close must be
			// able to sweep a pool that is gone from the address map but
			// still owns draining sockets.
			sh.draining[p] = struct{}{}
		}
	}
	for a := range want {
		if sh.pools[a] == nil {
			sh.pools[a] = newPool(sh, a)
		}
	}
	sh.mu.Unlock()
	for _, p := range retired {
		p.retire()
		sh.reapDrained(p)
	}
}

// reapDrained drops a retired pool from the shard's draining set once no
// live socket remains — and none can appear: a slot with a dial in flight
// counts as live (the dial may still install a socket; its own retired
// re-check will fail it and call back here).
func (sh *shard) reapDrained(p *pool) {
	p.mu.Lock()
	done := true
	for i, c := range p.slots {
		if p.dialing[i] || (c != nil && !c.isBroken()) {
			done = false
			break
		}
	}
	p.mu.Unlock()
	if !done {
		return
	}
	sh.mu.Lock()
	delete(sh.draining, p)
	sh.mu.Unlock()
}

// retire marks the pool draining and closes any socket that already has no
// sessions; the rest drain as their sessions detach (conn.maybeDrain).
func (p *pool) retire() {
	p.mu.Lock()
	p.retired = true
	conns := make([]*conn, 0, len(p.slots))
	for _, c := range p.slots {
		if c != nil {
			conns = append(conns, c)
		}
	}
	p.cond.Broadcast() // leases waiting out a dial must observe retirement
	p.mu.Unlock()
	for _, c := range conns {
		c.maybeDrain()
	}
}

// probeLoop drives background health probing (Config.Probe): each tick,
// every empty or broken slot of every probe target's probing pool
// (probePool — one shard per address) is dialled and round-tripped. A
// successful probe repairs the slot in place — the dial resets the pool's
// backoff, so the fail-fast window closes — and leaves the socket live
// for the next lease; probes therefore double as connection pre-warming
// for freshly added backends. Probe dials deliberately ignore the backoff
// gate: the gate exists so clients never wait on a dead backend's connect
// timeout, and the probe goroutine is exactly the place where that wait
// is free.
//
// Probes run once per backend, not once per shard: one shard's pool
// carries the probe stream and the verdict of each probe is broadcast to
// every shard (broadcastVerdict), so a sharded manager's health traffic
// is identical to an unsharded one's — it does not multiply with the
// core count.
func (m *Manager) probeLoop() {
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-t.C:
			m.probeAll()
		}
	}
}

// probeTargets returns the address set to probe: the topology want-set
// when the manager is topology-managed, otherwise the union of every
// shard's pool addresses (a backend first leased on shard 3 must still
// be probed; probePool picks which shard's pool carries the probe).
func (m *Manager) probeTargets() []string {
	// Topology-managed: SetBackends fans one want-set to every shard, so
	// shard 0's copy is the whole answer.
	sh0 := m.shards[0]
	sh0.mu.Lock()
	if sh0.want != nil {
		out := make([]string, 0, len(sh0.want))
		for a := range sh0.want {
			out = append(out, a)
		}
		sh0.mu.Unlock()
		return out
	}
	sh0.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, sh := range m.shards {
		sh.mu.Lock()
		for a := range sh.pools {
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
		sh.mu.Unlock()
	}
	return out
}

// probePool picks the one pool that carries addr's probe stream: the
// first shard (in shard order) that already pools the address. Under
// topology management SetBackends creates the pool in every shard, so
// this is shard 0 — probes then double as pre-warming for new backends.
// Without topology management, probing through a shard that already
// pools the address keeps the probe from materialising sockets on a
// shard no lease ever uses.
func (m *Manager) probePool(addr string) *pool {
	for _, sh := range m.shards {
		sh.mu.Lock()
		p := sh.pools[addr]
		sh.mu.Unlock()
		if p != nil {
			return p
		}
	}
	return nil
}

// probeAll sweeps every probe target's probing pool once. Pools probe
// concurrently (one goroutine each, never overlapping per pool): a single
// blackholed backend spending its OS connect timeout must not
// head-of-line block the probing — and pre-warming — of every other
// backend. After the slot sweep, a healthy probing pool additionally
// verifies on behalf of degraded sibling shards (verifySiblings), so a
// fail-fast window armed by one shard's failed dial still closes when
// the backend recovers — while the probe stream stays one per backend.
func (m *Manager) probeAll() {
	for _, addr := range m.probeTargets() {
		if m.closed.Load() {
			return
		}
		p := m.probePool(addr)
		if p == nil {
			continue
		}
		p.mu.Lock()
		busy := p.probing || p.retired
		if !busy {
			p.probing = true
		}
		p.mu.Unlock()
		if busy {
			continue // last tick's sweep of this pool is still running
		}
		go func(p *pool) {
			for slot := range p.slots {
				p.probeSlot(slot)
			}
			p.verifySiblings()
			p.mu.Lock()
			p.probing = false
			p.mu.Unlock()
		}(p)
	}
}

// verifySiblings closes sibling shards' fail-fast windows when the
// probing pool looks healthy but another shard's pool for the same
// address is not: one probe round trip over a short-lived dedicated
// dial confirms the backend accepts and answers, and the success verdict
// broadcast clears every shard's window. Without it, a window armed by
// (say) shard 3's failed dial during a backend blip would never be
// probe-repaired while the probing shard's own sockets stayed live —
// every shard-3 lease would cross-core-steal for the whole window, the
// exact lock traffic sharding exists to remove.
//
// The verify deliberately does NOT ride an existing shared socket: its
// response would queue FIFO behind up to Window in-flight client
// responses (a loaded-but-alive backend would time the probe out and a
// fail there would EOF every multiplexed client), and its write could
// block unboundedly on a full in-flight window. A fresh socket's round
// trip is bounded by the dial and the read deadline, and a failure
// breaks nothing shared; no verdict is broadcast on failure — the
// probing pool's own live sockets make the backend's state ambiguous,
// and probeSlot owns the dead-backend verdict.
func (p *pool) verifySiblings() {
	if !p.m.siblingDown(p.addr, p.sh.id) {
		return
	}
	raw, err := p.m.cfg.Transport.Dial(p.addr)
	if err != nil {
		return
	}
	defer raw.Close()
	if _, err := raw.Write(p.m.cfg.Probe); err != nil {
		return
	}
	raw.SetReadDeadline(time.Now().Add(p.m.cfg.ProbeTimeout))
	var buf [256]byte
	if _, err := raw.Read(buf[:]); err != nil {
		return
	}
	p.m.probes.Inc()
	p.m.broadcastVerdict(p.addr, true, time.Time{}, 0)
}

// siblingDown reports whether any shard other than exclude holds an open
// fail-fast window for addr.
func (m *Manager) siblingDown(addr string, exclude int) bool {
	now := time.Now()
	for _, sh := range m.shards {
		if sh.id == exclude {
			continue
		}
		sh.mu.Lock()
		p := sh.pools[addr]
		sh.mu.Unlock()
		if p == nil {
			continue
		}
		p.mu.Lock()
		down := now.Before(p.downUntil)
		p.mu.Unlock()
		if down {
			return true
		}
	}
	return false
}

// probeSlot re-establishes one dead slot and verifies the backend
// answers, then broadcasts the dial verdict to every shard.
func (p *pool) probeSlot(slot int) {
	p.mu.Lock()
	if p.retired || p.dialing[slot] {
		p.mu.Unlock()
		return
	}
	if c := p.slots[slot]; c != nil && !c.isBroken() {
		p.mu.Unlock()
		return
	}
	// dialSlot releases p.mu; on failure it re-arms the backoff window so
	// leases keep failing fast until a later probe succeeds.
	s, err := p.dialSlot(slot)
	if err != nil {
		// The backend refused the dial: every shard's pool fails fast for
		// the same window, so no shard pays its own discovery dial.
		p.mu.Lock()
		until, backoff := p.downUntil, p.backoff
		p.mu.Unlock()
		p.m.broadcastVerdict(p.addr, false, until, backoff)
		return
	}
	if err := p.m.probeSession(s); err != nil {
		// Connected but not answering: break the socket so no lease lands
		// on a half-dead backend; the next probe tick re-dials. The dial
		// itself succeeded, so no window verdict is broadcast — sibling
		// shards' sockets to this backend break on their own read
		// timeouts, exactly as an unsharded pool's other slots would.
		s.c.fail(err)
		s.Close()
		return
	}
	p.m.probes.Inc()
	p.m.broadcastVerdict(p.addr, true, time.Time{}, 0)
	s.Close()
}

// broadcastVerdict propagates one probe's dial verdict for addr to every
// shard's pool: up closes the fail-fast window (and resets the backoff)
// everywhere, down extends every window to at least the probing pool's —
// a lease on any shard then fails fast instead of re-paying the dead
// backend's connect timeout, and recovers the moment a probe succeeds.
func (m *Manager) broadcastVerdict(addr string, up bool, until time.Time, backoff time.Duration) {
	for _, sh := range m.shards {
		sh.mu.Lock()
		p := sh.pools[addr]
		sh.mu.Unlock()
		if p == nil {
			continue
		}
		p.mu.Lock()
		if up {
			p.backoff, p.downUntil = 0, time.Time{}
		} else if p.downUntil.Before(until) {
			p.backoff, p.downUntil = backoff, until
		}
		p.mu.Unlock()
	}
}

// probeSession round-trips the configured no-op request on a fresh
// session. Any framed response counts as alive — the probe checks
// liveness, not semantics.
func (m *Manager) probeSession(s *Session) error {
	if _, err := s.Write(m.cfg.Probe); err != nil {
		return err
	}
	s.SetReadDeadline(time.Now().Add(m.cfg.ProbeTimeout))
	var buf [256]byte
	_, err := s.Read(buf[:])
	return err
}
