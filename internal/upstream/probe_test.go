package upstream

import (
	"errors"
	"testing"
	"time"

	"flick/internal/netstack"
)

// probeManager builds a manager with background probing over the test
// frame protocol (probe = one "ping" frame; the echo server answers it
// like any other frame).
func probeManager(u *netstack.UserNet, interval time.Duration) *Manager {
	return NewManager(Config{
		Transport:      u,
		Size:           2,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
		// A backoff far longer than the test: without probes, a failed
		// dial would gate leases until the window expires on its own.
		Backoff:       30 * time.Second,
		MaxBackoff:    30 * time.Second,
		Probe:         frame("ping"),
		ProbeInterval: interval,
		ProbeTimeout:  2 * time.Second,
	})
}

// waitCounter polls one manager counter until it reaches at least want.
func waitCounter(t *testing.T, m *Manager, name string, want uint64) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, _ := m.Counters().Get(name)
		if got >= want {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter %s stuck at %d, want ≥ %d (counters: %s)", name, got, want, m.Counters())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestProbeClosesFailFastWindow is the probe layer's headline property: a
// backend that comes back while its backoff window is still open is
// rediscovered by the background probe, so the first client lease after
// recovery succeeds instead of failing fast — the client never pays for
// the discovery.
func TestProbeClosesFailFastWindow(t *testing.T) {
	u := netstack.NewUserNet()
	m := probeManager(u, 5*time.Millisecond)
	defer m.Close()

	// No listener yet: the first lease fails and opens a 30s backoff
	// window. Without probes every lease inside it would fail fast.
	if _, err := m.Lease("probe:1"); err == nil {
		t.Fatal("lease against a dead backend should fail")
	}
	if _, err := m.Lease("probe:1"); !errors.Is(err, ErrDown) {
		t.Fatalf("second lease should fail fast inside the backoff window, got %v", err)
	}
	ffBefore, _ := m.Counters().Get("failfast")

	// The backend comes back. The probe loop must re-dial the slot and
	// close the window in the background.
	l := echoServer(t, u, "probe:1")
	defer l.Close()
	waitCounter(t, m, "probes", 1)

	s, err := m.Lease("probe:1")
	if err != nil {
		t.Fatalf("lease after probe recovery: %v (counters: %s)", err, m.Counters())
	}
	defer s.Close()
	if _, err := s.Write(frame("hello")); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
	if got := readFrame(t, s, 2*time.Second); got != "hello" {
		t.Fatalf("echo after recovery = %q", got)
	}
	ffAfter, _ := m.Counters().Get("failfast")
	if ffAfter != ffBefore {
		t.Fatalf("client lease failed fast after recovery: failfast %d → %d", ffBefore, ffAfter)
	}
}

// TestProbePrewarmsNewBackends: SetBackends makes an address a probe
// target immediately, so its sockets exist before the first lease.
func TestProbePrewarmsNewBackends(t *testing.T) {
	u := netstack.NewUserNet()
	l := echoServer(t, u, "warm:1")
	defer l.Close()
	m := probeManager(u, 5*time.Millisecond)
	defer m.Close()

	m.SetBackends([]string{"warm:1"})
	waitCounter(t, m, "probes", 1)
	if m.Conns() == 0 {
		t.Fatal("probing should have pre-established pool sockets")
	}
	dials, _ := m.Counters().Get("dials")
	s, err := m.Lease("warm:1")
	if err != nil {
		t.Fatalf("lease: %v", err)
	}
	defer s.Close()
	if d2, _ := m.Counters().Get("dials"); d2 != dials {
		t.Fatalf("lease dialled (%d → %d) although probes pre-warmed the pool", dials, d2)
	}
}

// TestSetBackendsDrainsRemovedPools pins the drain contract: a removed
// backend's sessions finish on their original socket, new leases are
// refused, and the socket closes (counted) when the last session detaches.
func TestSetBackendsDrainsRemovedPools(t *testing.T) {
	u := netstack.NewUserNet()
	la := echoServer(t, u, "drain:a")
	defer la.Close()
	lb := echoServer(t, u, "drain:b")
	defer lb.Close()
	m := NewManager(Config{
		Transport:      u,
		Size:           1,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
	})
	defer m.Close()
	m.SetBackends([]string{"drain:a", "drain:b"})

	sa, err := m.Lease("drain:a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sa.Write(frame("one")); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, sa, 2*time.Second); got != "one" {
		t.Fatalf("echo = %q", got)
	}

	// Remove a while sa is still leased.
	m.SetBackends([]string{"drain:b"})

	// The in-flight lease keeps working on its original socket.
	if _, err := sa.Write(frame("two")); err != nil {
		t.Fatalf("write on draining socket: %v", err)
	}
	if got := readFrame(t, sa, 2*time.Second); got != "two" {
		t.Fatalf("echo on draining socket = %q", got)
	}
	if d, _ := m.Counters().Get("drained"); d != 0 {
		t.Fatalf("socket drained while a session still held it (drained=%d)", d)
	}

	// New leases to the removed backend are refused — including via the
	// lazy-creation path (the pool is already gone from the map).
	if _, err := m.Lease("drain:a"); !errors.Is(err, ErrRetired) {
		t.Fatalf("lease to removed backend = %v, want ErrRetired", err)
	}

	// Last session detaches → socket closes, counted once.
	sa.Close()
	waitCounter(t, m, "drained", 1)

	// The surviving backend is untouched.
	sb, err := m.Lease("drain:b")
	if err != nil {
		t.Fatalf("lease to surviving backend: %v", err)
	}
	sb.Close()

	// Re-adding the address builds a fresh pool.
	m.SetBackends([]string{"drain:a", "drain:b"})
	sa2, err := m.Lease("drain:a")
	if err != nil {
		t.Fatalf("lease after re-add: %v", err)
	}
	defer sa2.Close()
	if _, err := sa2.Write(frame("back")); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, sa2, 2*time.Second); got != "back" {
		t.Fatalf("echo after re-add = %q", got)
	}
}

// TestCloseSweepsDrainingPools: a retired pool's sockets — gone from the
// address map but kept alive by a leased session — must still be failed
// by Manager.Close (a socket never outlives a closed manager).
func TestCloseSweepsDrainingPools(t *testing.T) {
	u := netstack.NewUserNet()
	l := echoServer(t, u, "sweep:a")
	defer l.Close()
	m := NewManager(Config{
		Transport:      u,
		Size:           1,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
	})
	sa, err := m.Lease("sweep:a")
	if err != nil {
		t.Fatal(err)
	}
	defer sa.Close()
	if _, err := sa.Write(frame("up")); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, sa, 2*time.Second); got != "up" {
		t.Fatalf("echo = %q", got)
	}

	// Retire the pool while the session still holds its socket, then
	// close the manager: the session must observe EOF promptly.
	m.SetBackends(nil)
	m.Close()
	sa.SetReadDeadline(time.Now().Add(2 * time.Second))
	var buf [16]byte
	if _, err := sa.Read(buf[:]); err == nil {
		t.Fatal("read on a closed manager's draining socket returned data, want EOF")
	} else if errors.Is(err, netstack.ErrTimeout) {
		t.Fatal("draining socket survived Manager.Close (read timed out instead of EOF)")
	}
}

// TestProbeMarksUnresponsiveBackendBroken: a backend that accepts the
// dial but never answers is broken by the probe timeout instead of
// serving leases.
func TestProbeMarksUnresponsiveBackendBroken(t *testing.T) {
	u := netstack.NewUserNet()
	// A listener that accepts and then ignores everything.
	l, err := u.Listen("mute:1")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	m := NewManager(Config{
		Transport:      u,
		Size:           1,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
		Probe:          frame("ping"),
		ProbeInterval:  5 * time.Millisecond,
		ProbeTimeout:   20 * time.Millisecond,
	})
	defer m.Close()
	m.SetBackends([]string{"mute:1"})

	// Each probe cycle dials, times out, and breaks the socket: redials
	// keep climbing while no probe ever succeeds. (Conns may sample 1
	// mid-cycle — the socket sits in its slot during the round trip.)
	waitCounter(t, m, "redials", 3)
	if p, _ := m.Counters().Get("probes"); p != 0 {
		t.Fatalf("a probe against a mute backend succeeded (probes=%d)", p)
	}
}
