package upstream

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flick/internal/buffer"
	"flick/internal/metrics"
	"flick/internal/netstack"
)

// Session is a virtual connection leased from a Manager: net.Conn-shaped so
// instance binding is untouched at the type level, but multiplexed onto a
// shared pipelined socket. Writes are framed into whole requests, counted
// into the socket's FIFO and forwarded without copying; the demultiplexer
// delivers the matching response views into the session's inbound queue,
// still as retained references into the pooled read chunks.
//
// Session implements netstack.Readable (the platform's event-driven input
// path — no goroutine per session) and netstack.RefReader (response views
// move into the input task's parse queue by reference). Closing a session
// never closes the shared socket; responses to requests the session no
// longer waits for are consumed and dropped to keep FIFO correlation intact
// for its neighbours.
type Session struct {
	c      *conn
	closed atomic.Bool

	// Read side.
	rmu        sync.Mutex
	rcond      *sync.Cond
	rq         *buffer.Queue // delivered response views
	onReadable func()
	eof        bool
	rdl        time.Time

	// Write side — guarded by c.wmu (the shared socket's write lock).
	wq     *buffer.Queue // staging: usually drained to empty per write
	wlens  []int         // per-message lengths of the staged prefix
	wctxs  []Context     // per-message demux contexts, parallel to wlens
	wviews [][]byte      // reusable iovec scratch
	one    [1][]byte     // reusable single-buffer batch for Write
	werr   error         // sticky write-side failure
}

func newSession(c *conn) *Session {
	s := &Session{
		c:  c,
		rq: buffer.NewQueue(c.m.bufs),
		wq: buffer.NewQueue(c.m.bufs),
	}
	s.rcond = sync.NewCond(&s.rmu)
	return s
}

// deliver hands one response view (with its retained region reference) to
// the session. Closed sessions drop the view — the response was consumed
// from the shared stream purely to keep FIFO order for later requests.
func (s *Session) deliver(view []byte, ref *buffer.Ref) {
	s.rmu.Lock()
	if s.closed.Load() {
		s.rmu.Unlock()
		ref.Release()
		return
	}
	s.rq.AppendView(view, ref)
	cb := s.onReadable
	s.rcond.Broadcast()
	s.rmu.Unlock()
	if cb != nil {
		cb()
	}
}

// deliverEOF marks the stream ended (shared socket failed or manager
// closed).
func (s *Session) deliverEOF() {
	s.rmu.Lock()
	if s.closed.Load() || s.eof {
		s.rmu.Unlock()
		return
	}
	s.eof = true
	cb := s.onReadable
	s.rcond.Broadcast()
	s.rmu.Unlock()
	if cb != nil {
		cb()
	}
}

// Write implements net.Conn: p is framed into whole requests which are
// forwarded onto the shared socket in FIFO order. It blocks while the
// socket's in-flight window is full (pipelining backpressure). A trailing
// partial message is retained (copied into pooled memory) until later
// writes complete it.
func (s *Session) Write(p []byte) (int, error) {
	s.c.wmu.Lock()
	defer s.c.wmu.Unlock()
	s.one[0] = p
	n, err := s.writeLocked(s.one[:])
	s.one[0] = nil
	return int(n), err
}

// WriteBatch implements netstack.BatchWriter: a whole scatter list enters
// the FIFO and the socket under one acquisition of the shared write lock.
func (s *Session) WriteBatch(bufs [][]byte) (int64, error) {
	s.c.wmu.Lock()
	defer s.c.wmu.Unlock()
	return s.writeLocked(bufs)
}

// writeLocked stages bufs, frames complete requests, reserves FIFO/window
// slots and forwards the framed bytes. c.wmu must be held.
func (s *Session) writeLocked(bufs [][]byte) (int64, error) {
	c := s.c
	if s.werr != nil {
		return 0, s.werr
	}
	if s.closed.Load() {
		return 0, netstack.ErrClosed
	}
	var total int64
	for _, b := range bufs {
		s.wq.AppendView(b, nil) // staged without copy; resolved before return
		total += int64(len(b))
	}
	// Frame the staged stream into whole requests, capturing each one's
	// demux context (HEAD flag, quiet-batch terminator, ...) for the FIFO.
	s.wlens = s.wlens[:0]
	s.wctxs = s.wctxs[:0]
	framed := 0
	for {
		n, ctx, err := c.m.cfg.RequestFramer(s.wq, framed)
		if err != nil {
			s.werr = err
			s.wq.Reset()
			return 0, err
		}
		if n == 0 || s.wq.Len()-framed < n {
			break
		}
		s.wlens = append(s.wlens, n)
		s.wctxs = append(s.wctxs, ctx)
		framed += n
	}
	// Forward, reserving window slots; a full window forwards in slices.
	sent := 0
	for sent < len(s.wlens) {
		c.mu.Lock()
		for c.fcount >= c.window && !c.broken && !s.closed.Load() {
			c.cond.Wait()
		}
		if c.broken || s.closed.Load() {
			broken := c.broken
			c.mu.Unlock()
			s.wq.Reset()
			if broken {
				s.werr = netstack.ErrClosed
			}
			return total, netstack.ErrClosed
		}
		k, nb := 0, 0
		for sent+k < len(s.wlens) && c.fcount+k < c.window {
			nb += s.wlens[sent+k]
			k++
		}
		// One clock read covers the whole framed batch: its requests leave
		// in one vectored write, so they share a round-trip start stamp.
		now := metrics.Now()
		for i := 0; i < k; i++ {
			c.pushWaiter(s, s.wctxs[sent+i], now)
		}
		c.m.inflight.Add(int64(k)) // under c.mu, so fail() cannot double-count
		c.load.Add(int64(k))
		c.mu.Unlock()
		s.wviews = s.wq.AppendViews(s.wviews[:0], nb)
		_, werr := c.writeRaw(s.wviews)
		for i := range s.wviews {
			s.wviews[i] = nil
		}
		s.wq.Discard(nb)
		if werr != nil {
			s.werr = werr
			s.wq.Reset()
			c.fail(werr)
			return total, werr
		}
		sent += k
	}
	// A trailing partial request still aliases the caller's memory; own it
	// before returning (cold path — platform flushes are whole messages).
	if s.wq.Len() > 0 {
		s.compactTail()
	}
	return total, nil
}

// compactTail copies the staged partial message into pooled memory the
// session owns across calls.
func (s *Session) compactTail() {
	n := s.wq.Len()
	ref := s.c.m.bufs.GetRef(n)
	s.wq.PeekAt(ref.Bytes(), 0)
	s.wq.Reset()
	s.wq.AppendRef(ref, n)
}

// TryRead implements netstack.Readable: a non-blocking copy out of the
// delivered response views.
func (s *Session) TryRead(p []byte) (int, error) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if s.closed.Load() {
		return 0, netstack.ErrClosed
	}
	if s.rq.Len() > 0 {
		n := s.rq.Peek(p)
		s.rq.Discard(n)
		return n, nil
	}
	if s.eof {
		return 0, io.EOF
	}
	return 0, nil
}

// TryReadRefs implements netstack.RefReader: every delivered response view
// moves into q by reference — the zero-copy hand-over into an input task's
// parse queue.
func (s *Session) TryReadRefs(q *buffer.Queue) (int, error) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	if s.closed.Load() {
		return 0, netstack.ErrClosed
	}
	if s.rq.Len() > 0 {
		return s.rq.DrainTo(q), nil
	}
	if s.eof {
		return 0, io.EOF
	}
	return 0, nil
}

// SetReadableCallback implements netstack.Readable. If data or EOF is
// already pending, fn fires immediately.
func (s *Session) SetReadableCallback(fn func()) {
	s.rmu.Lock()
	s.onReadable = fn
	pending := s.eof || s.rq.Len() > 0
	s.rmu.Unlock()
	if fn != nil && pending {
		fn()
	}
}

// Read implements net.Conn: it blocks until data, EOF, deadline or close.
func (s *Session) Read(p []byte) (int, error) {
	s.rmu.Lock()
	defer s.rmu.Unlock()
	for {
		if s.closed.Load() {
			return 0, netstack.ErrClosed
		}
		if s.rq.Len() > 0 {
			n := s.rq.Peek(p)
			s.rq.Discard(n)
			return n, nil
		}
		if s.eof {
			return 0, io.EOF
		}
		if dl := s.rdl; !dl.IsZero() {
			if !time.Now().Before(dl) {
				return 0, netstack.ErrTimeout
			}
			t := time.AfterFunc(time.Until(dl), func() {
				s.rmu.Lock()
				s.rcond.Broadcast()
				s.rmu.Unlock()
			})
			s.rcond.Wait()
			t.Stop()
		} else {
			s.rcond.Wait()
		}
	}
}

// Close implements net.Conn. The shared socket stays up; only this
// session's lease ends. Blocked readers and writers are woken.
func (s *Session) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	s.rmu.Lock()
	s.rq.Reset()
	s.onReadable = nil
	s.rcond.Broadcast()
	s.rmu.Unlock()
	// Detach (and wake window-blocked writers) before taking the write
	// lock: a blocked writer holds it until it observes the close.
	s.c.removeSession(s)
	s.c.wmu.Lock()
	s.wq.Reset()
	s.c.wmu.Unlock()
	return nil
}

// upAddr is the session's trivial net.Addr.
type upAddr string

func (a upAddr) Network() string { return "upstream" }
func (a upAddr) String() string  { return string(a) }

// LocalAddr implements net.Conn.
func (s *Session) LocalAddr() net.Addr { return upAddr("session!" + s.c.p.addr) }

// RemoteAddr implements net.Conn.
func (s *Session) RemoteAddr() net.Addr { return upAddr(s.c.p.addr) }

// SetDeadline implements net.Conn (read side only; writes to the shared
// socket follow the socket's own deadline discipline).
func (s *Session) SetDeadline(t time.Time) error { return s.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn.
func (s *Session) SetReadDeadline(t time.Time) error {
	s.rmu.Lock()
	s.rdl = t
	s.rcond.Broadcast()
	s.rmu.Unlock()
	return nil
}

// SetWriteDeadline implements net.Conn (no-op: session writes inherit the
// shared socket's blocking semantics).
func (s *Session) SetWriteDeadline(time.Time) error { return nil }

var (
	_ net.Conn             = (*Session)(nil)
	_ netstack.Readable    = (*Session)(nil)
	_ netstack.BatchWriter = (*Session)(nil)
	_ netstack.RefReader   = (*Session)(nil)
)
