package upstream

import (
	"runtime"
	"sync/atomic"
	"testing"

	"flick/internal/buffer"
	"flick/internal/netstack"
)

// BenchmarkUpstreamShardScaling measures the per-worker-sharding claim in
// isolation: GOMAXPROCS goroutines (one per "worker") each round-trip
// requests over a leased session. With one shard every writer contends on
// the single shared socket's write lock and FIFO; with one shard per
// worker each goroutine's write path — framing, FIFO reservation,
// vectored write — runs against its own socket. The delta between the
// shared and sharded sub-benchmarks is the cross-core synchronization the
// sharding removes (run with `make bench-shard`).
func BenchmarkUpstreamShardScaling(b *testing.B) {
	b.Run("shared", func(b *testing.B) { benchmarkLeasedRoundTrips(b, 1) })
	b.Run("sharded", func(b *testing.B) { benchmarkLeasedRoundTrips(b, runtime.GOMAXPROCS(0)) })
}

func benchmarkLeasedRoundTrips(b *testing.B, shards int) {
	u := netstack.NewUserNet()
	defer echoServer(b, u, "bench:shard").Close()
	pool := buffer.NewPool(256)
	pool.Prime(64)
	m := NewManager(Config{
		Transport:      u,
		Pool:           pool,
		Size:           1,
		Shards:         shards,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
	})
	defer m.Close()

	req := frame("get key-bench-000042")
	var wid atomic.Int32
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		w := int(wid.Add(1)) - 1
		s, err := m.LeaseOn("bench:shard", w)
		if err != nil {
			b.Error(err)
			return
		}
		defer s.Close()
		buf := make([]byte, len(req))
		for pb.Next() {
			if _, err := s.Write(req); err != nil {
				b.Error(err)
				return
			}
			for got := 0; got < len(buf); {
				n, err := s.Read(buf[got:])
				if err != nil {
					b.Error(err)
					return
				}
				got += n
			}
		}
	})
}
