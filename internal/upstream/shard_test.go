package upstream

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"flick/internal/buffer"
	"flick/internal/netstack"
)

// shardManager builds a sharded manager over the test frame protocol.
func shardManager(u *netstack.UserNet, pool *buffer.Pool, shards, size int) *Manager {
	return NewManager(Config{
		Transport:      u,
		Pool:           pool,
		Size:           size,
		Shards:         shards,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
		Backoff:        20 * time.Millisecond,
	})
}

// TestLeaseOnRoutesToOwnShard: leases for distinct workers land in
// distinct shards — each dials its own socket — and a repeat lease on the
// same worker reuses its shard's socket instead of crossing shards.
func TestLeaseOnRoutesToOwnShard(t *testing.T) {
	u := netstack.NewUserNet()
	defer echoServer(t, u, "sh:own").Close()
	m := shardManager(u, nil, 4, 1)
	defer m.Close()

	var sessions []*Session
	for w := 0; w < 4; w++ {
		s, err := m.LeaseOn("sh:own", w)
		if err != nil {
			t.Fatalf("LeaseOn worker %d: %v", w, err)
		}
		sessions = append(sessions, s)
	}
	if d := counter(t, m, "dials"); d != 4 {
		t.Fatalf("dials = %d, want 4 (one socket per shard)", d)
	}
	if h := counter(t, m, "shardhits"); h != 4 {
		t.Fatalf("shardhits = %d, want 4", h)
	}
	if st := counter(t, m, "shardsteals"); st != 0 {
		t.Fatalf("shardsteals = %d, want 0", st)
	}
	// Same worker again: the shard's own socket serves (reuse, no dial).
	s, err := m.LeaseOn("sh:own", 2)
	if err != nil {
		t.Fatal(err)
	}
	sessions = append(sessions, s)
	if d := counter(t, m, "dials"); d != 4 {
		t.Fatalf("dials after reuse = %d, want 4", d)
	}
	if r := counter(t, m, "reuse"); r != 1 {
		t.Fatalf("reuse = %d, want 1", r)
	}
	// Worker ids beyond the shard count wrap (worker 6 → shard 2).
	s6, err := m.LeaseOn("sh:own", 6)
	if err != nil {
		t.Fatal(err)
	}
	sessions = append(sessions, s6)
	if d := counter(t, m, "dials"); d != 4 {
		t.Fatalf("dials after wrapped worker = %d, want 4", d)
	}
	// Every session round-trips despite living on four distinct sockets.
	for i, s := range sessions {
		msg := fmt.Sprintf("own-%d", i)
		if _, err := s.Write(frame(msg)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if got := readFrame(t, s, 2*time.Second); got != msg {
			t.Fatalf("session %d got %q, want %q", i, got, msg)
		}
		s.Close()
	}
}

// TestShardStealFallsBackToLiveSibling: a shard whose dial fails borrows
// a live socket from a sibling shard instead of failing the lease — and
// counts the cross-shard hop as a shardsteal.
func TestShardStealFallsBackToLiveSibling(t *testing.T) {
	u := netstack.NewUserNet()
	l := echoServer(t, u, "sh:steal")
	m := shardManager(u, nil, 2, 1)
	defer m.Close()

	s0, err := m.LeaseOn("sh:steal", 0) // dials shard 0's socket
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	l.Close() // no further dials can succeed

	// Shard 1 has no socket and cannot dial one; the lease must be served
	// by shard 0's live socket.
	s1, err := m.LeaseOn("sh:steal", 1)
	if err != nil {
		t.Fatalf("LeaseOn with a live sibling socket failed: %v", err)
	}
	defer s1.Close()
	if st := counter(t, m, "shardsteals"); st != 1 {
		t.Fatalf("shardsteals = %d, want 1", st)
	}
	if _, err := s1.Write(frame("borrowed")); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, s1, 2*time.Second); got != "borrowed" {
		t.Fatalf("stolen-session echo = %q", got)
	}
	// Shard 1's failed dial opened its backoff window; the next lease on
	// it steals again (fail-fast path) rather than failing with ErrDown.
	s2, err := m.LeaseOn("sh:steal", 1)
	if err != nil {
		t.Fatalf("LeaseOn during sibling backoff failed: %v", err)
	}
	s2.Close()
	if st := counter(t, m, "shardsteals"); st != 2 {
		t.Fatalf("shardsteals = %d, want 2", st)
	}
	// A lease a sibling absorbed was never refused: failfast counts only
	// leases that actually fail, not backoff hits rescued by a steal.
	if ff := counter(t, m, "failfast"); ff != 0 {
		t.Fatalf("failfast = %d for leases served by a sibling, want 0", ff)
	}
}

// TestSetBackendsDrainsEveryShard: a topology removal retires the
// address's pool in every shard — sessions finish on their sockets, new
// leases are refused on every shard, and each shard's socket closes
// (counted) as its last session detaches.
func TestSetBackendsDrainsEveryShard(t *testing.T) {
	const shards = 3
	u := netstack.NewUserNet()
	defer echoServer(t, u, "sh:drain").Close()
	defer echoServer(t, u, "sh:keep").Close()
	m := shardManager(u, nil, shards, 1)
	defer m.Close()
	m.SetBackends([]string{"sh:drain", "sh:keep"})

	var sessions []*Session
	for w := 0; w < shards; w++ {
		s, err := m.LeaseOn("sh:drain", w)
		if err != nil {
			t.Fatalf("LeaseOn worker %d: %v", w, err)
		}
		sessions = append(sessions, s)
	}
	if n := m.Conns(); n != shards {
		t.Fatalf("Conns = %d, want %d", n, shards)
	}

	m.SetBackends([]string{"sh:keep"})

	// In-flight sessions keep working on their original shard sockets.
	for i, s := range sessions {
		msg := fmt.Sprintf("drain-%d", i)
		if _, err := s.Write(frame(msg)); err != nil {
			t.Fatalf("write on draining shard %d: %v", i, err)
		}
		if got := readFrame(t, s, 2*time.Second); got != msg {
			t.Fatalf("draining shard %d echo = %q", i, got)
		}
	}
	if d := counter(t, m, "drained"); d != 0 {
		t.Fatalf("drained = %d while sessions still hold sockets", d)
	}
	// Every shard refuses new leases to the removed address.
	for w := 0; w < shards; w++ {
		if _, err := m.LeaseOn("sh:drain", w); !errors.Is(err, ErrRetired) {
			t.Fatalf("shard %d lease to removed backend = %v, want ErrRetired", w, err)
		}
	}
	// Each shard's socket closes as its session detaches.
	for _, s := range sessions {
		s.Close()
	}
	waitCounter(t, m, "drained", shards)
	if n := m.Conns(); n != 0 {
		t.Fatalf("Conns = %d after drain, want 0", n)
	}
}

// drainingPools counts retired pools still tracked across all shards
// (white-box: the set Manager.Close must sweep).
func drainingPools(m *Manager) int {
	n := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		n += len(sh.draining)
		sh.mu.Unlock()
	}
	return n
}

// TestRetiredPoolReapedWhenSocketBreaksMidDrain: a retired pool whose
// socket dies before its last session detaches (backend crash during a
// drain) must still leave the shard's draining set — the broken socket
// ends the pool's life exactly as a counted drain does. Before the reap
// re-check in maybeDrain, each such pool was pinned until Manager.Close
// (unbounded growth under topology churn with failing backends).
func TestRetiredPoolReapedWhenSocketBreaksMidDrain(t *testing.T) {
	u := netstack.NewUserNet()
	l, err := u.Listen("sh:reap")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conns := make(chan net.Conn, 2)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			conns <- c
		}
	}()
	m := shardManager(u, nil, 1, 1)
	defer m.Close()
	m.SetBackends([]string{"sh:reap"})

	s, err := m.Lease("sh:reap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(frame("up")); err != nil {
		t.Fatal(err)
	}
	be := <-conns
	if got := readFrameRaw(t, be); got != "up" {
		t.Fatalf("backend saw %q", got)
	}
	if _, err := be.Write(frame("up")); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, s, 2*time.Second); got != "up" {
		t.Fatalf("echo = %q", got)
	}

	// Retire while the session still holds the socket, then break the
	// socket out from under the drain (backend dies mid-drain).
	m.SetBackends(nil)
	if n := drainingPools(m); n != 1 {
		t.Fatalf("draining pools = %d mid-drain, want 1", n)
	}
	be.Close() // backend dies; the shared socket fails
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	var p [8]byte
	if _, err := s.Read(p[:]); err != io.EOF {
		t.Fatalf("read after backend death = %v, want EOF", err)
	}
	s.Close() // last detach: the broken socket must still reap the pool

	deadline := time.Now().Add(2 * time.Second)
	for drainingPools(m) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("retired pool stranded in the draining set after its socket broke")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The socket broke on its own — it was never drained by the topology.
	if d := counter(t, m, "drained"); d != 0 {
		t.Fatalf("drained = %d for a socket that failed mid-drain, want 0", d)
	}
}

// TestConnsCountsDrainingSockets: a retired pool's sockets stay open
// until their sessions detach — Conns must keep reporting them (open OS
// sockets) instead of dropping them the moment SetBackends runs.
func TestConnsCountsDrainingSockets(t *testing.T) {
	u := netstack.NewUserNet()
	defer echoServer(t, u, "sh:conns").Close()
	m := shardManager(u, nil, 1, 1)
	defer m.Close()
	m.SetBackends([]string{"sh:conns"})

	s, err := m.Lease("sh:conns")
	if err != nil {
		t.Fatal(err)
	}
	if n := m.Conns(); n != 1 {
		t.Fatalf("Conns = %d, want 1", n)
	}
	m.SetBackends(nil) // retire while the session holds the socket
	if n := m.Conns(); n != 1 {
		t.Fatalf("Conns = %d during drain, want 1 (socket still open)", n)
	}
	s.Close()
	waitCounter(t, m, "drained", 1)
	if n := m.Conns(); n != 0 {
		t.Fatalf("Conns = %d after drain, want 0", n)
	}
}

// TestProbeVerdictBroadcastClosesAllShardWindows: a dead backend opens a
// fail-fast window in every shard that tried it; one successful probe —
// run once per backend, on shard 0 — must close every shard's window, so
// the first post-recovery lease on any shard succeeds.
func TestProbeVerdictBroadcastClosesAllShardWindows(t *testing.T) {
	const shards = 3
	u := netstack.NewUserNet()
	m := NewManager(Config{
		Transport:      u,
		Size:           1,
		Shards:         shards,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
		// A backoff far longer than the test: only the probe broadcast can
		// close the windows in time.
		Backoff:       30 * time.Second,
		MaxBackoff:    30 * time.Second,
		Probe:         frame("ping"),
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
	})
	defer m.Close()

	// Every shard burns its own dial and opens its own 30s window. With
	// all shards down there is nothing to steal, so the second round
	// fails fast on every shard.
	for w := 0; w < shards; w++ {
		if _, err := m.LeaseOn("sh:probe", w); err == nil {
			t.Fatalf("shard %d lease against a dead backend succeeded", w)
		}
	}
	for w := 0; w < shards; w++ {
		if _, err := m.LeaseOn("sh:probe", w); !errors.Is(err, ErrDown) {
			t.Fatalf("shard %d lease = %v, want ErrDown (own window open, no live sibling)", w, err)
		}
	}
	ffBefore := counter(t, m, "failfast")

	// Backend recovers; one probe (shard 0) broadcasts the verdict.
	defer echoServer(t, u, "sh:probe").Close()
	waitCounter(t, m, "probes", 1)

	for w := 0; w < shards; w++ {
		s, err := m.LeaseOn("sh:probe", w)
		if err != nil {
			t.Fatalf("shard %d lease after probe recovery: %v (counters: %s)", w, err, m.Counters())
		}
		if _, err := s.Write(frame("hi")); err != nil {
			t.Fatalf("shard %d write after recovery: %v", w, err)
		}
		if got := readFrame(t, s, 2*time.Second); got != "hi" {
			t.Fatalf("shard %d echo = %q", w, got)
		}
		s.Close()
	}
	if ff := counter(t, m, "failfast"); ff != ffBefore {
		t.Fatalf("leases failed fast after the probe broadcast: failfast %d → %d", ffBefore, ff)
	}
}

// TestProbeRepairsSiblingWindowWhileProbingShardHealthy: a fail-fast
// window armed by a non-probing shard's own failed dial (a backend blip
// the probing shard's live sockets never noticed) must still be closed
// by the probe layer — via a round trip on the probing shard's live
// socket and a success broadcast — not ridden out for its full duration
// while every lease on the degraded shard cross-core-steals.
func TestProbeRepairsSiblingWindowWhileProbingShardHealthy(t *testing.T) {
	u := netstack.NewUserNet()
	defer echoServer(t, u, "sh:blip").Close()
	m := NewManager(Config{
		Transport:      u,
		Size:           1,
		Shards:         2,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
		// A window only a probe verdict can close within the test.
		Backoff:       30 * time.Second,
		MaxBackoff:    30 * time.Second,
		Probe:         frame("ping"),
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  2 * time.Second,
	})
	defer m.Close()
	m.SetBackends([]string{"sh:blip"})

	// Shard 0 (the probing shard) holds a live, healthy socket.
	s0, err := m.LeaseOn("sh:blip", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()

	// Shard 1 armed its window during a blip shard 0 never saw
	// (white-box: equivalent to its own dial failing).
	m.shards[1].mu.Lock()
	p1 := m.shards[1].pools["sh:blip"]
	m.shards[1].mu.Unlock()
	p1.mu.Lock()
	p1.backoff = 30 * time.Second
	p1.downUntil = time.Now().Add(30 * time.Second)
	p1.mu.Unlock()

	probesBefore := counter(t, m, "probes")
	// The sibling-verify probe must round-trip on shard 0's live socket
	// and broadcast success, closing shard 1's window.
	waitCounter(t, m, "probes", probesBefore+1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		p1.mu.Lock()
		open := time.Now().Before(p1.downUntil)
		p1.mu.Unlock()
		if !open {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sibling shard's fail-fast window never closed by the probe broadcast")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The repaired shard serves its own lease: a fresh dial, not a steal.
	s1, err := m.LeaseOn("sh:blip", 1)
	if err != nil {
		t.Fatalf("lease on repaired shard: %v", err)
	}
	defer s1.Close()
	if st := counter(t, m, "shardsteals"); st != 0 {
		t.Fatalf("repaired shard's lease stole (%d), want its own dial", st)
	}
	if _, err := s1.Write(frame("back")); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, s1, 2*time.Second); got != "back" {
		t.Fatalf("echo after repair = %q", got)
	}
}

// TestProbeFailureBroadcastArmsAllShardWindows: a failed probe dial arms
// the fail-fast window in every shard, so no shard re-pays the dead
// backend's connect cost once the probe has discovered it.
func TestProbeFailureBroadcastArmsAllShardWindows(t *testing.T) {
	const shards = 3
	u := netstack.NewUserNet()
	m := NewManager(Config{
		Transport:      u,
		Size:           1,
		Shards:         shards,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
		Backoff:        30 * time.Second,
		MaxBackoff:     30 * time.Second,
		Probe:          frame("ping"),
		ProbeInterval:  time.Hour, // swept by hand below
		ProbeTimeout:   2 * time.Second,
	})
	defer m.Close()

	// Topology-managed: the probe sweep targets the address without any
	// lease having touched it. Run one sweep synchronously (white-box;
	// the background loop's timing would race the assertions below — a
	// lease's own failed dial also arms its shard's window, which is not
	// what this test is about).
	m.SetBackends([]string{"sh:dead"})
	p := m.probePool("sh:dead")
	p.probeSlot(0) // dial fails; the verdict broadcast arms every shard

	// Every shard now fails fast without ever having dialled: a dial
	// attempt of its own would surface as a dial error, not ErrDown.
	for w := 0; w < shards; w++ {
		if _, err := m.LeaseOn("sh:dead", w); !errors.Is(err, ErrDown) {
			t.Fatalf("shard %d lease = %v, want ErrDown", w, err)
		}
	}
	if ff := counter(t, m, "failfast"); ff != shards {
		t.Fatalf("failfast = %d, want %d (one per shard)", ff, shards)
	}
}

// TestShardedMidStreamFailureBalancesRefs: backends dying under sessions
// spread across shards EOF every session and recycle every pooled region
// (refgets == refputs) — the sharded variant of the PR 3 failure gate.
func TestShardedMidStreamFailureBalancesRefs(t *testing.T) {
	const shards = 2
	u := netstack.NewUserNet()
	pool := buffer.NewPool(64)
	l, err := u.Listen("sh:die")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var (
		bmu      sync.Mutex
		backends []interface{ Close() error }
	)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			bmu.Lock()
			backends = append(backends, c)
			bmu.Unlock()
			go func() {
				// Echo until killed.
				for {
					var h [4]byte
					if _, err := io.ReadFull(c, h[:]); err != nil {
						return
					}
					p := make([]byte, int(uint32(h[0])<<24|uint32(h[1])<<16|uint32(h[2])<<8|uint32(h[3])))
					if _, err := io.ReadFull(c, p); err != nil {
						return
					}
					if _, err := c.Write(frame(string(p))); err != nil {
						return
					}
				}
			}()
		}
	}()

	m := shardManager(u, pool, shards, 1)
	var sessions []*Session
	for w := 0; w < shards; w++ {
		s, err := m.LeaseOn("sh:die", w)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, s)
		msg := fmt.Sprintf("pre-%d", w)
		if _, err := s.Write(frame(msg)); err != nil {
			t.Fatal(err)
		}
		if got := readFrame(t, s, 2*time.Second); got != msg {
			t.Fatalf("shard %d echo = %q", w, got)
		}
	}
	// Leave one request in flight on each shard's socket, then kill every
	// backend connection.
	for w, s := range sessions {
		if _, err := s.Write(frame(fmt.Sprintf("doomed-%d", w))); err != nil {
			t.Fatal(err)
		}
	}
	bmu.Lock()
	for _, b := range backends {
		b.Close()
	}
	bmu.Unlock()

	for w, s := range sessions {
		s.SetReadDeadline(time.Now().Add(2 * time.Second))
		var p [16]byte
		if _, err := s.Read(p[:]); err != io.EOF {
			t.Fatalf("shard %d session read after backend death = %v, want EOF", w, err)
		}
		s.Close()
	}
	m.Close()
	waitBalanced(t, pool)
}

// TestConcurrentShardLeaseStress hammers a sharded manager from many
// goroutines across all shards (worker ids wrap past the shard count) to
// give -race a fair shot at the shard map, steal path and per-shard
// drain/probe bookkeeping.
func TestConcurrentShardLeaseStress(t *testing.T) {
	u := netstack.NewUserNet()
	defer echoServer(t, u, "sh:stress").Close()
	m := shardManager(u, nil, 4, 2)
	defer m.Close()

	const goroutines, rounds = 16, 40
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				s, err := m.LeaseOn("sh:stress", g%8)
				if err != nil {
					errs <- fmt.Errorf("lease g%d-%d: %w", g, i, err)
					return
				}
				msg := fmt.Sprintf("g%d-%d", g, i)
				if _, err := s.Write(frame(msg)); err != nil {
					s.Close()
					errs <- fmt.Errorf("write %s: %w", msg, err)
					return
				}
				s.SetReadDeadline(time.Now().Add(5 * time.Second))
				var h [4]byte
				if _, err := io.ReadFull(s, h[:]); err != nil {
					s.Close()
					errs <- fmt.Errorf("read %s: %w", msg, err)
					return
				}
				p := make([]byte, int(uint32(h[0])<<24|uint32(h[1])<<16|uint32(h[2])<<8|uint32(h[3])))
				if _, err := io.ReadFull(s, p); err != nil {
					s.Close()
					errs <- fmt.Errorf("read body %s: %w", msg, err)
					return
				}
				if string(p) != msg {
					s.Close()
					errs <- fmt.Errorf("cross-delivery: got %q, want %q", p, msg)
					return
				}
				s.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if hits := counter(t, m, "shardhits"); hits == 0 {
		t.Fatal("stress recorded no shardhits")
	}
}
