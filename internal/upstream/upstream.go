package upstream

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"flick/internal/buffer"
	"flick/internal/metrics"
	"flick/internal/netstack"
)

// Framer computes the wire length of the protocol message beginning at
// buffered offset from in q, without consuming any byte. It returns 0 when
// more bytes are needed and an error when the bytes cannot begin a message.
// Framers must be stateless (the layer calls them at arbitrary offsets on
// both directions of a stream). Protocols whose response framing is
// independent of the request (the test protocols, memcache.FrameLen) wrap
// one with StatelessRequest / StatelessResponse; protocols where it is not
// (HTTP: HEAD, 204/304; memcached quiet batches) implement RequestFramer /
// ResponseFramer directly.
type Framer func(q *buffer.Queue, from int) (int, error)

// Context is the per-request demultiplexing context a RequestFramer
// captures at write time and the layer carries through the FIFO to the
// ResponseFramer: whatever the protocol needs to frame the response that
// only the request knows (HTTP method, memcached quiet-batch terminator).
// The layer never interprets it; 0 is the neutral "nothing special" value
// every stateless protocol uses.
type Context uint64

// RequestFramer frames the outgoing request stream of a shared socket: it
// reports the wire length of the request (or request batch) starting at
// buffered offset from in q — 0 when more bytes are needed — plus the
// Context the demultiplexer must use to frame its response. One framed
// unit occupies one FIFO slot and one window unit and yields exactly one
// delivered response view.
type RequestFramer func(q *buffer.Queue, from int) (int, Context, error)

// ResponseFramer frames the inbound response stream: it reports the wire
// length of the response owed to the FIFO-head request whose Context is
// ctx, starting at buffered offset from in q, without consuming any byte.
// It returns 0 when more bytes are needed and an error when the buffered
// bytes cannot be that response (the shared socket is then failed: every
// session on it observes EOF rather than a misframed or truncated view).
type ResponseFramer func(q *buffer.Queue, from int, ctx Context) (int, error)

// StatelessRequest adapts a request-blind Framer to the request side of a
// Config: every framed request carries the zero Context.
func StatelessRequest(f Framer) RequestFramer {
	return func(q *buffer.Queue, from int) (int, Context, error) {
		n, err := f(q, from)
		return n, 0, err
	}
}

// StatelessResponse adapts a request-blind Framer to the response side of
// a Config: the FIFO head's Context is ignored.
func StatelessResponse(f Framer) ResponseFramer {
	return func(q *buffer.Queue, from int, _ Context) (int, error) {
		return f(q, from)
	}
}

// Errors.
var (
	// ErrDown fails a lease fast while the backend's redial backoff window
	// is open.
	ErrDown = errors.New("upstream: backend down (failing fast in backoff)")
	// ErrUnsolicited breaks a shared connection whose backend produced a
	// response with no matching request (FIFO correlation impossible).
	ErrUnsolicited = errors.New("upstream: response without matching request")
	// ErrRetired fails a lease to a backend address that a topology
	// update removed: its pool is draining (or gone) and must not pick up
	// new work.
	ErrRetired = errors.New("upstream: backend removed from topology")
	// errManagerClosed fails the sessions of a closed manager.
	errManagerClosed = errors.New("upstream: manager closed")
)

// readChunk is the pooled read-buffer size for shared-socket reads.
const readChunk = 32 << 10

// Config parameterises a Manager.
type Config struct {
	// Transport dials backend sockets.
	Transport netstack.Transport
	// Pool supplies data-path buffers (buffer.Global when nil).
	Pool *buffer.Pool
	// Size is the shared-socket count per backend address per shard
	// (default 2).
	Size int
	// Shards is the number of independent pool shards (default 1). With
	// Shards = N every backend address has N disjoint socket sets, one per
	// scheduler worker: LeaseOn(addr, w) leases from shard w mod N, so the
	// write path of a task graph pinned to one worker — framing, FIFO
	// reservation, vectored write — never takes a lock contended by
	// another core. Health probes still run once per backend (against
	// shard 0) and broadcast their verdict to every shard, so probe
	// traffic does not multiply with the core count. Shards = 1 is the
	// single shared pool (the `flickbench churn` ablation).
	Shards int
	// Window bounds in-flight (unanswered) requests per shared socket;
	// writers block when it is full (default 128).
	Window int
	// RequestFramer frames outgoing requests (FIFO accounting) and
	// captures each request's demux Context.
	RequestFramer RequestFramer
	// ResponseFramer frames the inbound response stream (demultiplexing),
	// consulting the FIFO head's Context.
	ResponseFramer ResponseFramer
	// Backoff is the initial redial backoff after a failed dial (default
	// 50ms); it doubles per consecutive failure up to MaxBackoff (default
	// 2s) and resets on success.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Probe, when non-empty, holds the wire bytes of one protocol-level
	// no-op request (memcache.ProbeRequest, http.ProbeRequest) and turns
	// on proactive health probing: every ProbeInterval the manager dials
	// empty or broken pool slots in the background and round-trips the
	// probe, so dead sockets re-establish — and fail-fast backoff windows
	// close — before any client lease pays for the discovery. The probe
	// request must satisfy RequestFramer (exactly one framed request with
	// exactly one response).
	Probe []byte
	// ProbeInterval is the probe timer period (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 1s); a backend
	// that accepts the dial but does not answer is marked broken.
	ProbeTimeout time.Duration
}

// Manager is the shared upstream connection layer for one service: per
// shard, a pool of pipelined sockets per backend address, leased out as
// Sessions. Shard count and socket count per pool come from Config.
type Manager struct {
	cfg    Config
	bufs   *buffer.Pool
	shards []*shard
	closed atomic.Bool
	done   chan struct{} // stops the probe loop

	dials       metrics.Counter // sockets established
	reuse       metrics.Counter // leases served by an already-live socket
	redials     metrics.Counter // sockets re-established after a failure
	failfast    metrics.Counter // leases rejected during backoff
	probes      metrics.Counter // successful background probe round trips
	drained     metrics.Counter // sockets closed by topology drain
	shardhits   metrics.Counter // leases served by the caller's own shard
	shardsteals metrics.Counter // leases served by a sibling shard's socket
	inflight    atomic.Int64    // current unanswered requests (gauge)

	// lat is the upstream round-trip histogram: lease write (FIFO entry
	// push under c.mu, stamped once per framed batch) → FIFO delivery.
	// Sharded by the socket's home shard, so recording stays core-local
	// with the rest of the write path.
	lat *metrics.ShardedHistogram

	// loads holds one in-flight gauge per backend address, shared by every
	// shard's sockets to that address: the global per-backend view that
	// bounded-load routing (backend.BoundedRing via InflightFor) consumes.
	// Gauges are created on first use and never removed — a retired
	// address's gauge drains to zero and costs one map entry.
	loadMu sync.Mutex
	loads  map[string]*atomic.Int64
}

// shard is one independent slice of the manager's pool state: its own
// address→pool map, topology want-set and draining set, guarded by its own
// lock. A lease routed to its home shard touches no other shard's state,
// which is the whole point — per-worker shards keep the backend write path
// core-local.
type shard struct {
	m  *Manager
	id int

	mu    sync.Mutex
	pools map[string]*pool
	// want is the topology-managed address set (nil until SetBackends is
	// first called): with it set, leases to addresses outside the set are
	// refused instead of lazily resurrecting a drained pool.
	want map[string]bool
	// draining holds retired pools that may still own live sockets
	// (sessions finishing on them): Close must sweep these too — a socket
	// must never outlive a closed manager. Pools leave the set once every
	// socket is gone (reapDrained).
	draining map[*pool]struct{}
}

// NewManager creates a manager. RequestFramer and ResponseFramer are
// required; the zero values of the remaining fields select defaults.
func NewManager(cfg Config) *Manager {
	if cfg.Transport == nil {
		cfg.Transport = netstack.KernelTCP{}
	}
	if cfg.Pool == nil {
		cfg.Pool = buffer.Global
	}
	if cfg.Size <= 0 {
		cfg.Size = 2
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Window <= 0 {
		cfg.Window = 128
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.RequestFramer == nil || cfg.ResponseFramer == nil {
		panic("upstream: NewManager requires request and response framers")
	}
	m := &Manager{cfg: cfg, bufs: cfg.Pool, done: make(chan struct{}),
		loads: map[string]*atomic.Int64{},
		lat:   metrics.NewShardedHistogram(cfg.Shards)}
	m.shards = make([]*shard, cfg.Shards)
	for i := range m.shards {
		m.shards[i] = &shard{m: m, id: i, pools: map[string]*pool{},
			draining: map[*pool]struct{}{}}
	}
	if len(cfg.Probe) > 0 {
		go m.probeLoop()
	}
	return m
}

// Shards returns the configured shard count.
func (m *Manager) Shards() int { return len(m.shards) }

// Latency returns the manager's round-trip histogram: time from a
// request's FIFO entry (stamped as its framed batch is reserved, just
// before the vectored write) to its response's FIFO delivery. Requests
// dropped by a socket failure record nothing.
func (m *Manager) Latency() *metrics.ShardedHistogram { return m.lat }

// Lease returns a virtual connection to addr from shard 0. Callers that
// know which scheduler worker will write the session should use LeaseOn.
func (m *Manager) Lease(addr string) (*Session, error) { return m.LeaseOn(addr, 0) }

// LeaseOn returns a virtual connection to addr, multiplexed onto one of
// the shared sockets of worker's shard (worker mod Shards; sockets are
// established lazily). While the home shard cannot serve — its backend
// sockets are down and the redial backoff window is open — the lease
// falls back to a live socket in a sibling shard (counted as a
// shardsteal) before failing fast.
func (m *Manager) LeaseOn(addr string, worker int) (*Session, error) {
	if m.closed.Load() {
		return nil, errManagerClosed
	}
	if worker < 0 {
		worker = 0
	}
	sh := m.shards[worker%len(m.shards)]
	s, err := sh.lease(addr)
	if err == nil {
		m.shardhits.Inc()
		return s, nil
	}
	// Own shard down (open backoff window or a failed dial): a live socket
	// in a sibling shard still reaches the backend — correctness prefers a
	// cross-core lock over a refused lease. Retirement and manager close
	// are global verdicts, never stolen around.
	if len(m.shards) > 1 && !errors.Is(err, ErrRetired) && !errors.Is(err, errManagerClosed) {
		if s := m.stealLive(addr, sh.id); s != nil {
			m.shardsteals.Inc()
			return s, nil
		}
	}
	// Only now is the lease actually refused; a backoff-window refusal no
	// sibling could absorb is the fail-fast the counter documents.
	if errors.Is(err, ErrDown) {
		m.failfast.Inc()
	}
	return nil, err
}

// lease resolves addr to this shard's pool (creating it when the topology
// allows) and leases from it.
func (sh *shard) lease(addr string) (*Session, error) {
	sh.mu.Lock()
	p := sh.pools[addr]
	if p == nil {
		// Under topology management, an address outside the current set
		// must not lazily resurrect a drained pool: the lease raced an
		// UpdateBackends that removed its backend.
		if sh.want != nil && !sh.want[addr] {
			sh.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrRetired, addr)
		}
		p = newPool(sh, addr)
		sh.pools[addr] = p
	}
	sh.mu.Unlock()
	return p.lease()
}

// stealLive finds a live socket for addr in any shard but exclude and
// attaches a session to it (nil when no shard has one).
func (m *Manager) stealLive(addr string, exclude int) *Session {
	for off := 1; off < len(m.shards); off++ {
		sh := m.shards[(exclude+off)%len(m.shards)]
		sh.mu.Lock()
		p := sh.pools[addr]
		sh.mu.Unlock()
		if p == nil {
			continue
		}
		p.mu.Lock()
		var c *conn
		if !p.retired {
			c = p.anyLive()
		}
		p.mu.Unlock()
		if c != nil {
			m.reuse.Inc()
			return c.newSession()
		}
	}
	return nil
}

// Counters snapshots the layer's counters: dials, reuse, inflight (gauge),
// redials, failfast, probes, drained, shardhits, shardsteals.
func (m *Manager) Counters() metrics.CounterSet {
	inflight := m.inflight.Load()
	if inflight < 0 {
		inflight = 0
	}
	return metrics.NewCounterSet(
		"dials", m.dials.Value(),
		"reuse", m.reuse.Value(),
		"inflight", uint64(inflight),
		"redials", m.redials.Value(),
		"failfast", m.failfast.Value(),
		"probes", m.probes.Value(),
		"drained", m.drained.Value(),
		"shardhits", m.shardhits.Value(),
		"shardsteals", m.shardsteals.Value(),
	)
}

// loadFor returns the per-address in-flight gauge, creating it on first
// use.
func (m *Manager) loadFor(addr string) *atomic.Int64 {
	m.loadMu.Lock()
	defer m.loadMu.Unlock()
	g := m.loads[addr]
	if g == nil {
		g = new(atomic.Int64)
		m.loads[addr] = g
	}
	return g
}

// InflightFor reports the current number of unanswered requests in flight
// to addr across every shard (never negative). It satisfies
// backend.LoadFunc: wiring it into a backend.BoundedRing gives the router
// the live per-backend load the bounded-load bound is computed over.
func (m *Manager) InflightFor(addr string) int64 {
	m.loadMu.Lock()
	g := m.loads[addr]
	m.loadMu.Unlock()
	if g == nil {
		return 0
	}
	if v := g.Load(); v > 0 {
		return v
	}
	return 0
}

// Health verdicts reported by HealthFor.
const (
	// HealthUp: at least one live shared socket to the backend exists.
	HealthUp = "up"
	// HealthDown: no live socket and at least one shard's fail-fast
	// backoff window is open — leases are being refused.
	HealthDown = "down"
	// HealthIdle: no socket yet and no failure recorded (a freshly added
	// backend before its first lease or probe).
	HealthIdle = "idle"
)

// HealthFor reports the manager's verdict on addr: HealthUp, HealthDown
// or HealthIdle. This is the per-backend health column the admin API's
// /topology endpoint serves.
func (m *Manager) HealthFor(addr string) string {
	now := time.Now()
	down := false
	for _, sh := range m.shards {
		sh.mu.Lock()
		p := sh.pools[addr]
		sh.mu.Unlock()
		if p == nil {
			continue
		}
		p.mu.Lock()
		if !p.retired && p.anyLive() != nil {
			p.mu.Unlock()
			return HealthUp
		}
		if now.Before(p.downUntil) {
			down = true
		}
		p.mu.Unlock()
	}
	if down {
		return HealthDown
	}
	return HealthIdle
}

// Conns reports the number of live shared sockets across all shards and
// pools — including the sockets of retired pools still draining (open OS
// sockets are open OS sockets) — the quantity the connection-churn
// benchmark compares against C×B per-client dialling.
func (m *Manager) Conns() int {
	live := 0
	for _, sh := range m.shards {
		sh.mu.Lock()
		sweep := make([]*pool, 0, len(sh.pools)+len(sh.draining))
		for _, p := range sh.pools {
			sweep = append(sweep, p)
		}
		for p := range sh.draining {
			sweep = append(sweep, p)
		}
		for _, p := range sweep {
			p.mu.Lock()
			for _, c := range p.slots {
				if c != nil && !c.isBroken() {
					live++
				}
			}
			p.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	return live
}

// Close tears the layer down: every shared socket in every shard is closed
// and every live session observes EOF. Subsequent leases fail.
func (m *Manager) Close() {
	if !m.closed.CompareAndSwap(false, true) {
		return
	}
	close(m.done)
	var conns []*conn
	for _, sh := range m.shards {
		sh.mu.Lock()
		sweep := make([]*pool, 0, len(sh.pools)+len(sh.draining))
		for _, p := range sh.pools {
			sweep = append(sweep, p)
		}
		for p := range sh.draining { // retired pools may still hold live sockets
			sweep = append(sweep, p)
		}
		for _, p := range sweep {
			p.mu.Lock()
			for _, c := range p.slots {
				if c != nil {
					conns = append(conns, c)
				}
			}
			p.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	for _, c := range conns {
		c.fail(errManagerClosed)
	}
}

// pool is the shared-socket set for one backend address within one shard.
type pool struct {
	m    *Manager
	sh   *shard
	addr string

	mu        sync.Mutex
	cond      *sync.Cond // wakes leases waiting out another lease's dial
	slots     []*conn
	dialing   []bool        // a lease is dialling this slot (outside p.mu)
	slotUp    []bool        // slot ever held a socket: its next dial is a redial
	rr        int           // round-robin lease cursor
	backoff   time.Duration // current redial backoff (0: healthy)
	downUntil time.Time     // fail-fast gate
	retired   bool          // topology removed this backend: drain, no new leases
	probing   bool          // a probe sweep of this pool is in flight
}

func newPool(sh *shard, addr string) *pool {
	p := &pool{
		m:       sh.m,
		sh:      sh,
		addr:    addr,
		slots:   make([]*conn, sh.m.cfg.Size),
		dialing: make([]bool, sh.m.cfg.Size),
		slotUp:  make([]bool, sh.m.cfg.Size),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// lease binds a fresh session to the next slot's socket, dialling it if the
// slot is empty or its previous socket died. The dial itself runs OUTSIDE
// p.mu — a blackholed backend (SYNs dropped, OS connect timeout) must not
// block leases that can reuse a live socket in another slot, nor
// Manager.Conns/Close; concurrent leases needing the same slot either fall
// back to any live socket or wait out the in-flight dial.
func (p *pool) lease() (*Session, error) {
	p.mu.Lock()
	for {
		if p.retired {
			p.mu.Unlock()
			return nil, fmt.Errorf("%w: %s", ErrRetired, p.addr)
		}
		slot := p.rr % len(p.slots)
		p.rr++
		c := p.slots[slot]
		if c != nil && !c.isBroken() {
			p.mu.Unlock()
			p.m.reuse.Inc()
			return c.newSession(), nil
		}
		if !p.dialing[slot] {
			if time.Now().Before(p.downUntil) {
				// Backoff window open: any live socket in another slot
				// still serves leases; fail fast only with none at all.
				if alt := p.anyLive(); alt != nil {
					p.mu.Unlock()
					p.m.reuse.Inc()
					return alt.newSession(), nil
				}
				p.mu.Unlock()
				// The caller (LeaseOn) counts failfast: a lease that a
				// sibling shard's socket ends up serving was never
				// actually refused.
				return nil, fmt.Errorf("%w: %s for %v", ErrDown, p.addr, time.Until(p.downUntil).Round(time.Millisecond))
			}
			return p.dialSlot(slot)
		}
		// Another lease is dialling this slot: any live socket will do.
		if alt := p.anyLive(); alt != nil {
			p.mu.Unlock()
			p.m.reuse.Inc()
			return alt.newSession(), nil
		}
		p.cond.Wait() // no socket anywhere: wait for the dial, re-evaluate
	}
}

// anyLive returns a live socket from any slot (nil when none). p.mu held.
func (p *pool) anyLive() *conn {
	for _, c := range p.slots {
		if c != nil && !c.isBroken() {
			return c
		}
	}
	return nil
}

// dialSlot establishes slot's socket (the caller checked the backoff
// gate). p.mu must be held; it is released across the dial and the
// function returns with it released.
func (p *pool) dialSlot(slot int) (*Session, error) {
	p.dialing[slot] = true
	p.mu.Unlock()
	raw, err := p.m.cfg.Transport.Dial(p.addr)
	p.mu.Lock()
	p.dialing[slot] = false
	p.cond.Broadcast()
	if err != nil {
		if p.backoff == 0 {
			p.backoff = p.m.cfg.Backoff
		} else if p.backoff *= 2; p.backoff > p.m.cfg.MaxBackoff {
			p.backoff = p.m.cfg.MaxBackoff
		}
		p.downUntil = time.Now().Add(p.backoff)
		retired := p.retired
		p.mu.Unlock()
		if retired {
			// A retire that ran during the dial skipped this pool in its
			// reap (the in-flight dial counted as potentially-live);
			// nothing was installed, so re-check now or the pool sits in
			// the shard's draining set until Manager.Close.
			p.sh.reapDrained(p)
		}
		return nil, fmt.Errorf("upstream: dial %s: %w", p.addr, err)
	}
	p.backoff = 0
	p.downUntil = time.Time{}
	p.m.dials.Inc()
	if p.slotUp[slot] {
		p.m.redials.Inc()
	}
	p.slotUp[slot] = true
	c := newConn(p, raw)
	p.slots[slot] = c
	// Publish-then-check: Manager.Close sets the flag before sweeping the
	// slots, so either its sweep sees this conn or this check sees the
	// flag — a socket can never outlive a closed manager. Retirement gets
	// the same treatment: a SetBackends that raced this dial (retire ran
	// while p.mu was released) must not receive a live socket on a pool
	// nothing tracks any more.
	closed := p.m.closed.Load()
	retired := p.retired
	p.mu.Unlock()
	c.start()
	if closed {
		c.fail(errManagerClosed)
		return nil, errManagerClosed
	}
	if retired {
		c.fail(ErrRetired)
		p.sh.reapDrained(p)
		return nil, fmt.Errorf("%w: %s", ErrRetired, p.addr)
	}
	return c.newSession(), nil
}

// conn is one shared pipelined socket plus its FIFO correlation state.
type conn struct {
	p    *pool
	m    *Manager
	raw  net.Conn
	load *atomic.Int64 // the per-address in-flight gauge (Manager.loads)
	evt  bool          // event-driven demux (netstack.Readable) vs pump goroutine

	// wmu serialises socket writes. It is held across FIFO reservation AND
	// the write itself, so FIFO order always matches socket byte order.
	wmu sync.Mutex

	mu       sync.Mutex // fifo ring, window accounting, session set, broken
	cond     *sync.Cond // window space / failure wakeup
	fifo     []waiter   // ring: one entry per in-flight request (+ its demux context)
	fhead    int
	fcount   int
	window   int
	sessions map[*Session]struct{}
	broken   bool
	draining bool // topology drain claimed this socket's close

	dmu sync.Mutex    // demux ingest (event callback vs EOF callback races)
	rq  *buffer.Queue // inbound byte stream awaiting framing
}

func newConn(p *pool, raw net.Conn) *conn {
	c := &conn{
		p:        p,
		m:        p.m,
		raw:      raw,
		load:     p.m.loadFor(p.addr),
		window:   p.m.cfg.Window,
		sessions: map[*Session]struct{}{},
		rq:       buffer.NewQueue(p.m.bufs),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// start arms the demultiplexer: event-driven off the stack's readable
// callback where the transport supports it (no goroutine at all), a pump
// goroutine for blocking kernel sockets — per shared socket, not per
// client, which is the point.
func (c *conn) start() {
	if r, ok := c.raw.(netstack.Readable); ok {
		c.evt = true
		r.SetReadableCallback(c.ingest)
	} else {
		go c.pump()
	}
}

func (c *conn) isBroken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.broken
}

// ingest is the event-driven demux step: drain the stack's buffer into
// pooled chunks and deliver every complete response.
func (c *conn) ingest() {
	c.dmu.Lock()
	if c.isBroken() {
		c.dmu.Unlock()
		return
	}
	r := c.raw.(netstack.Readable)
	for {
		ref := c.m.bufs.GetRef(readChunk)
		n, err := r.TryRead(ref.Bytes())
		c.rq.AppendRead(ref, n) // consumes the ref in every case
		if n > 0 {
			if derr := c.deliver(); derr != nil {
				c.dmu.Unlock()
				c.fail(derr)
				return
			}
			continue
		}
		if err != nil {
			c.dmu.Unlock()
			c.fail(err)
			return
		}
		c.dmu.Unlock()
		return
	}
}

// pump is the blocking-read demux loop for kernel sockets.
func (c *conn) pump() {
	for {
		ref := c.m.bufs.GetRef(readChunk)
		n, err := c.raw.Read(ref.Bytes())
		c.dmu.Lock()
		if c.isBroken() {
			c.dmu.Unlock()
			ref.Release()
			return
		}
		c.rq.AppendRead(ref, n)
		derr := c.deliver()
		c.dmu.Unlock()
		if derr == nil {
			derr = err
		}
		if derr != nil {
			c.fail(derr)
			return
		}
	}
}

// waiter is one FIFO entry: the session owed the next response plus the
// demux context its request's framing captured at write time and the
// round-trip start stamp (metrics.Now, read once per framed batch).
type waiter struct {
	s     *Session
	ctx   Context
	start int64
}

// deliver frames complete responses off the inbound stream — consulting
// the FIFO head's request context, since the wire alone cannot frame a
// HEAD response or a quiet-batch reply — and hands each one, as a retained
// zero-copy view, to the session at the FIFO head. c.dmu must be held.
func (c *conn) deliver() error {
	for {
		if c.rq.Len() == 0 {
			return nil
		}
		c.mu.Lock()
		ctx, armed := c.peekWaiter()
		c.mu.Unlock()
		if !armed {
			// Bytes with no request in flight: the writer pushes its FIFO
			// entry before the request reaches the socket, so a response
			// can never legitimately precede its entry. (A concurrent
			// fail() draining the FIFO also lands here; fail is
			// idempotent, so the redundant verdict is harmless.)
			return ErrUnsolicited
		}
		n, err := c.m.cfg.ResponseFramer(c.rq, 0, ctx)
		if err != nil {
			return err
		}
		if n == 0 || c.rq.Len() < n {
			return nil
		}
		view, ref := c.rq.TakeRef(n)
		c.mu.Lock()
		s, start := c.popWaiter()
		if s != nil {
			c.m.inflight.Add(-1) // under c.mu: fail() subtracts fcount here too
			c.load.Add(-1)
		}
		c.cond.Signal()
		c.mu.Unlock()
		if s == nil {
			ref.Release()
			return ErrUnsolicited
		}
		c.m.lat.Record(c.p.sh.id, time.Duration(metrics.Now()-start))
		s.deliver(view, ref)
	}
}

// pushWaiter appends one in-flight entry stamped with its round-trip
// start. c.mu must be held.
func (c *conn) pushWaiter(s *Session, ctx Context, start int64) {
	if c.fcount == len(c.fifo) {
		grown := make([]waiter, max(16, 2*len(c.fifo)))
		for i := 0; i < c.fcount; i++ {
			grown[i] = c.fifo[(c.fhead+i)%len(c.fifo)]
		}
		c.fifo = grown
		c.fhead = 0
	}
	c.fifo[(c.fhead+c.fcount)%len(c.fifo)] = waiter{s: s, ctx: ctx, start: start}
	c.fcount++
}

// peekWaiter reports the FIFO head's demux context without removing the
// entry (false when the FIFO is empty). c.mu must be held.
func (c *conn) peekWaiter() (Context, bool) {
	if c.fcount == 0 {
		return 0, false
	}
	return c.fifo[c.fhead].ctx, true
}

// popWaiter removes the FIFO head, returning its session and round-trip
// start stamp (nil session when empty). c.mu must be held.
func (c *conn) popWaiter() (*Session, int64) {
	if c.fcount == 0 {
		return nil, 0
	}
	w := c.fifo[c.fhead]
	c.fifo[c.fhead] = waiter{}
	c.fhead = (c.fhead + 1) % len(c.fifo)
	c.fcount--
	return w.s, w.start
}

// writeRaw performs one vectored write on the shared socket. c.wmu must be
// held.
func (c *conn) writeRaw(bufs [][]byte) (int64, error) {
	if bw, ok := c.raw.(netstack.BatchWriter); ok {
		return bw.WriteBatch(bufs)
	}
	nb := net.Buffers(bufs)
	return nb.WriteTo(c.raw)
}

// fail breaks the shared socket: in-flight FIFO entries are dropped, every
// session multiplexed on the socket observes EOF, buffered bytes recycle,
// and the pool slot is left for the next lease to re-dial (with backoff
// bookkeeping handled at dial time).
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.broken {
		c.mu.Unlock()
		return
	}
	c.broken = true
	sessions := make([]*Session, 0, len(c.sessions))
	for s := range c.sessions {
		sessions = append(sessions, s)
	}
	if c.fcount > 0 {
		c.m.inflight.Add(-int64(c.fcount))
		c.load.Add(-int64(c.fcount))
	}
	for c.fcount > 0 {
		c.popWaiter()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	if c.evt {
		c.raw.(netstack.Readable).SetReadableCallback(nil)
	}
	c.raw.Close()
	c.dmu.Lock()
	c.rq.Reset()
	c.dmu.Unlock()
	for _, s := range sessions {
		s.deliverEOF()
	}
	_ = err // the failure surfaces to sessions as EOF; err is for debuggers
}

// newSession attaches a fresh virtual connection to the socket.
func (c *conn) newSession() *Session {
	s := newSession(c)
	c.mu.Lock()
	broken := c.broken
	if !broken {
		c.sessions[s] = struct{}{}
	}
	c.mu.Unlock()
	if broken {
		// The socket died between lease and attach: the session is born at
		// EOF, exactly as if its dedicated backend connection had dropped.
		s.deliverEOF()
	}
	return s
}

// removeSession detaches a closed session and wakes writers (a blocked
// writer must observe the close). On a retired pool the socket drains:
// the last session's detach closes it.
func (c *conn) removeSession(s *Session) {
	c.mu.Lock()
	delete(c.sessions, s)
	c.cond.Broadcast()
	c.mu.Unlock()
	c.maybeDrain()
}

// maybeDrain closes the socket of a retired pool once no session is
// multiplexed on it — the drain endpoint of a topology removal: in-flight
// leases completed on their original socket, nothing new can attach
// (lease refuses retired pools), so the socket's life is over.
func (c *conn) maybeDrain() {
	c.p.mu.Lock()
	retired := c.p.retired
	c.p.mu.Unlock()
	if !retired {
		return
	}
	c.mu.Lock()
	broken := c.broken
	drain := !broken && !c.draining && len(c.sessions) == 0
	if drain {
		c.draining = true // claim the close: concurrent detaches count once
	}
	c.mu.Unlock()
	if drain {
		c.m.drained.Inc()
		c.fail(ErrRetired)
	}
	if drain || broken {
		// A socket that broke on its own mid-drain (backend died before
		// the last session detached) ends the pool's life just as a
		// counted drain does: without this re-check the pool would sit in
		// the shard's draining set until Manager.Close.
		c.p.sh.reapDrained(c.p)
	}
}
