package upstream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"flick/internal/buffer"
	"flick/internal/netstack"
)

// The tests speak a minimal 4-byte-length-prefixed frame protocol, so the
// layer's FIFO correlation, windowing and failure behaviour are pinned
// independently of any real codec (the protocol framers have their own
// golden tests, and internal/apps drives the layer end to end).

func testFramer(q *buffer.Queue, from int) (int, error) {
	if q.Len()-from < 4 {
		return 0, nil
	}
	var h [4]byte
	q.PeekAt(h[:], from)
	n := int(binary.BigEndian.Uint32(h[:]))
	if n > 1<<20 {
		return 0, errors.New("testframer: oversized frame")
	}
	return 4 + n, nil
}

func frame(payload string) []byte {
	b := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(b, uint32(len(payload)))
	copy(b[4:], payload)
	return b
}

// readFrame reads one complete frame off a blocking net.Conn.
func readFrame(t testing.TB, c net.Conn, timeout time.Duration) string {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(timeout))
	var h [4]byte
	if _, err := io.ReadFull(c, h[:]); err != nil {
		t.Fatalf("readFrame header: %v", err)
	}
	p := make([]byte, binary.BigEndian.Uint32(h[:]))
	if _, err := io.ReadFull(c, p); err != nil {
		t.Fatalf("readFrame body: %v", err)
	}
	return string(p)
}

// echoServer answers every frame with its payload, in arrival order.
func echoServer(t testing.TB, u *netstack.UserNet, addr string) net.Listener {
	t.Helper()
	l, err := u.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					var h [4]byte
					if _, err := io.ReadFull(c, h[:]); err != nil {
						return
					}
					p := make([]byte, binary.BigEndian.Uint32(h[:]))
					if _, err := io.ReadFull(c, p); err != nil {
						return
					}
					if _, err := c.Write(frame(string(p))); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return l
}

func testManager(u *netstack.UserNet, pool *buffer.Pool, size, window int) *Manager {
	return NewManager(Config{
		Transport:      u,
		Pool:           pool,
		Size:           size,
		Window:         window,
		RequestFramer:  StatelessRequest(testFramer),
		ResponseFramer: StatelessResponse(testFramer),
		Backoff:        20 * time.Millisecond,
	})
}

func counter(t *testing.T, m *Manager, name string) uint64 {
	t.Helper()
	v, ok := m.Counters().Get(name)
	if !ok {
		t.Fatalf("counter %q missing from %s", name, m.Counters())
	}
	return v
}

func TestLeaseReuseAndCounters(t *testing.T) {
	u := netstack.NewUserNet()
	defer echoServer(t, u, "be:1").Close()
	m := testManager(u, nil, 2, 0)
	defer m.Close()

	var sessions []*Session
	for i := 0; i < 5; i++ {
		s, err := m.Lease("be:1")
		if err != nil {
			t.Fatalf("lease %d: %v", i, err)
		}
		sessions = append(sessions, s)
	}
	if d := counter(t, m, "dials"); d != 2 {
		t.Fatalf("dials = %d, want 2 (pool size bounds sockets)", d)
	}
	if r := counter(t, m, "reuse"); r != 3 {
		t.Fatalf("reuse = %d, want 3", r)
	}
	if n := m.Conns(); n != 2 {
		t.Fatalf("Conns = %d, want 2", n)
	}
	// Every session works despite sharing two sockets.
	for i, s := range sessions {
		msg := fmt.Sprintf("ping-%d", i)
		if _, err := s.Write(frame(msg)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if got := readFrame(t, s, 2*time.Second); got != msg {
			t.Fatalf("session %d got %q, want %q", i, got, msg)
		}
	}
	for _, s := range sessions {
		s.Close()
	}
}

// TestFIFOCorrelationInterleaved is the heart of the layer: requests from
// different sessions interleave on one shared socket, and each response
// lands on the session that issued the matching request.
func TestFIFOCorrelationInterleaved(t *testing.T) {
	u := netstack.NewUserNet()
	defer echoServer(t, u, "be:fifo").Close()
	m := testManager(u, nil, 1, 0)
	defer m.Close()

	a, err := m.Lease("be:fifo")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Lease("be:fifo")
	if err != nil {
		t.Fatal(err)
	}
	if d := counter(t, m, "dials"); d != 1 {
		t.Fatalf("dials = %d, want 1 (both sessions share the socket)", d)
	}
	// Interleave: a1, b1, a2 hit the wire in this order.
	for _, w := range []struct {
		s   *Session
		msg string
	}{{a, "a1"}, {b, "b1"}, {a, "a2"}} {
		if _, err := w.s.Write(frame(w.msg)); err != nil {
			t.Fatal(err)
		}
	}
	if got := readFrame(t, a, 2*time.Second); got != "a1" {
		t.Fatalf("a first = %q", got)
	}
	if got := readFrame(t, b, 2*time.Second); got != "b1" {
		t.Fatalf("b = %q", got)
	}
	if got := readFrame(t, a, 2*time.Second); got != "a2" {
		t.Fatalf("a second = %q", got)
	}
	a.Close()
	b.Close()
}

// TestSplitWritesReassembleFrames pins the request framing of the write
// path: a message split across Write calls (and one write carrying one and
// a half messages) still counts as the right number of FIFO entries.
func TestSplitWritesReassembleFrames(t *testing.T) {
	u := netstack.NewUserNet()
	defer echoServer(t, u, "be:split").Close()
	m := testManager(u, nil, 1, 0)
	defer m.Close()

	s, err := m.Lease("be:split")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f1, f2, f3 := frame("one"), frame("twotwo"), frame("three")
	// f1 split mid-header and mid-body; f2 and half of f3 in one write.
	blob := append(append([]byte{}, f2...), f3...)
	for _, chunk := range [][]byte{f1[:2], f1[2:5], f1[5:], blob[:len(f2)+3], blob[len(f2)+3:]} {
		if _, err := s.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []string{"one", "twotwo", "three"} {
		if got := readFrame(t, s, 2*time.Second); got != want {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
}

func TestDialFailureBackoffFailFast(t *testing.T) {
	u := netstack.NewUserNet()
	m := testManager(u, nil, 1, 0)
	defer m.Close()

	if _, err := m.Lease("be:down"); err == nil {
		t.Fatal("lease to a dead backend succeeded")
	} else if errors.Is(err, ErrDown) {
		t.Fatal("first failure must be the dial error, not fail-fast")
	}
	if _, err := m.Lease("be:down"); !errors.Is(err, ErrDown) {
		t.Fatalf("lease during backoff = %v, want ErrDown", err)
	}
	if ff := counter(t, m, "failfast"); ff != 1 {
		t.Fatalf("failfast = %d, want 1", ff)
	}
	// Backend comes up; once the backoff window passes, leases succeed.
	defer echoServer(t, u, "be:down").Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s, err := m.Lease("be:down")
		if err == nil {
			s.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lease never recovered: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if d := counter(t, m, "dials"); d != 1 {
		t.Fatalf("dials = %d, want 1", d)
	}
}

// TestMidStreamFailureEOFsSessions: a backend dying mid-stream must EOF
// every session multiplexed on the socket — with an in-flight request or
// not — release every pooled reference, and redial on the next lease.
func TestMidStreamFailureEOFsSessions(t *testing.T) {
	u := netstack.NewUserNet()
	pool := buffer.NewPool(64)
	l, err := u.Listen("be:die")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conns := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			conns <- c
		}
	}()

	m := testManager(u, pool, 1, 0)
	active, err := m.Lease("be:die")
	if err != nil {
		t.Fatal(err)
	}
	idle, err := m.Lease("be:die") // no in-flight request
	if err != nil {
		t.Fatal(err)
	}
	if _, err := active.Write(frame("never-answered")); err != nil {
		t.Fatal(err)
	}
	be := <-conns
	// Answer one request, then die with one still pending.
	if _, err := active.Write(frame("pending")); err != nil {
		t.Fatal(err)
	}
	readFrameRaw(t, be)
	be.Write(frame("never-answered"))
	if got := readFrame(t, active, 2*time.Second); got != "never-answered" {
		t.Fatalf("pre-failure response = %q", got)
	}
	be.Close()

	for i, s := range []*Session{active, idle} {
		s.SetReadDeadline(time.Now().Add(2 * time.Second))
		var p [16]byte
		if _, err := s.Read(p[:]); err != io.EOF {
			t.Fatalf("session %d read after backend death = %v, want EOF", i, err)
		}
	}
	active.Close()
	idle.Close()

	// The next lease re-establishes the socket and counts a redial.
	s2, err := m.Lease("be:die")
	if err != nil {
		t.Fatalf("lease after failure: %v", err)
	}
	if rd := counter(t, m, "redials"); rd != 1 {
		t.Fatalf("redials = %d, want 1", rd)
	}
	s2.Close()
	m.Close()
	(<-conns).Close()

	// Everything pooled came back: gets/puts balance.
	if s := pool.Stats(); s.RefGets != s.RefPuts {
		t.Fatalf("region leak after failure: %d handed out, %d recycled", s.RefGets, s.RefPuts)
	}
	if inf := counter(t, m, "inflight"); inf != 0 {
		t.Fatalf("inflight = %d after teardown, want 0", inf)
	}
}

// readFrameRaw consumes one frame from the backend side of a connection.
func readFrameRaw(t *testing.T, c net.Conn) string {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	var h [4]byte
	if _, err := io.ReadFull(c, h[:]); err != nil {
		t.Fatalf("backend read header: %v", err)
	}
	p := make([]byte, binary.BigEndian.Uint32(h[:]))
	if _, err := io.ReadFull(c, p); err != nil {
		t.Fatalf("backend read body: %v", err)
	}
	return string(p)
}

// TestBackoffPrefersLiveSlot: while one slot's backend socket is in a
// redial-backoff window, leases that round-robin onto it must fall back to
// a live socket in another slot instead of failing fast — fail-fast is for
// a backend that is down, not for a pool that is half-up.
func TestBackoffPrefersLiveSlot(t *testing.T) {
	u := netstack.NewUserNet()
	l, err := u.Listen("be:half")
	if err != nil {
		t.Fatal(err)
	}
	conns := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			conns <- c
		}
	}()
	m := testManager(u, nil, 2, 0)
	defer m.Close()
	s0, err := m.Lease("be:half") // dials slot 0
	if err != nil {
		t.Fatal(err)
	}
	defer s0.Close()
	s1, err := m.Lease("be:half") // dials slot 1
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	be0 := <-conns
	defer be0.Close()
	be1 := <-conns

	l.Close()   // further dials to this address fail
	be1.Close() // slot 1 dies mid-stream

	// One lease may hit the broken slot and burn the failed re-dial that
	// opens the backoff window; every other lease must be served by the
	// live slot-0 socket.
	dialErrs, downErrs, served := 0, 0, 0
	for i := 0; i < 10; i++ {
		s, err := m.Lease("be:half")
		switch {
		case err == nil:
			served++
			s.Close()
		case errors.Is(err, ErrDown):
			downErrs++
		default:
			dialErrs++
		}
	}
	if downErrs != 0 {
		t.Fatalf("%d leases failed fast with a live socket in the pool", downErrs)
	}
	if dialErrs > 1 {
		t.Fatalf("%d failed dials, want at most the one that opens backoff", dialErrs)
	}
	if served < 9 {
		t.Fatalf("only %d/10 leases served by the surviving socket", served)
	}
}

// TestWindowBackpressure: a full in-flight window blocks further writes
// until a response frees a slot.
func TestWindowBackpressure(t *testing.T) {
	u := netstack.NewUserNet()
	l, err := u.Listen("be:win")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conns := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		conns <- c
	}()

	m := testManager(u, nil, 1, 1) // window of exactly one request
	defer m.Close()
	s, err := m.Lease("be:win")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Write(frame("first")); err != nil {
		t.Fatal(err)
	}
	be := <-conns
	defer be.Close()
	readFrameRaw(t, be)

	wrote := make(chan error, 1)
	go func() {
		_, err := s.Write(frame("second"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("second write completed with window full (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	// Answer the first request: the window frees and the write lands.
	if _, err := be.Write(frame("first")); err != nil {
		t.Fatal(err)
	}
	if err := <-wrote; err != nil {
		t.Fatalf("second write after window freed: %v", err)
	}
	if got := readFrameRaw(t, be); got != "second" {
		t.Fatalf("backend saw %q, want %q", got, "second")
	}
	if got := readFrame(t, s, 2*time.Second); got != "first" {
		t.Fatalf("response = %q", got)
	}
}

// TestUnsolicitedResponseBreaksConn: a response with no matching request
// makes FIFO correlation impossible; the only safe recovery is failing the
// socket (every session EOFs).
func TestUnsolicitedResponseBreaksConn(t *testing.T) {
	u := netstack.NewUserNet()
	l, err := u.Listen("be:rogue")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	conns := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			conns <- c
		}
	}()
	m := testManager(u, nil, 1, 0)
	defer m.Close()
	s, err := m.Lease("be:rogue")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	be := <-conns
	defer be.Close()
	if _, err := be.Write(frame("nobody asked")); err != nil {
		t.Fatal(err)
	}
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	var p [16]byte
	if _, err := s.Read(p[:]); err != io.EOF {
		t.Fatalf("read after unsolicited response = %v, want EOF", err)
	}
}

// TestSessionCloseDropsPendingResponse: closing a session with a response
// still in flight must consume that response silently (keeping FIFO order
// for neighbours) and leak nothing.
func TestSessionCloseDropsPendingResponse(t *testing.T) {
	u := netstack.NewUserNet()
	pool := buffer.NewPool(64)
	defer echoServer(t, u, "be:drop").Close()
	m := testManager(u, pool, 1, 0)

	quitter, err := m.Lease("be:drop")
	if err != nil {
		t.Fatal(err)
	}
	stayer, err := m.Lease("be:drop")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := quitter.Write(frame("goodbye")); err != nil {
		t.Fatal(err)
	}
	if _, err := stayer.Write(frame("hello")); err != nil {
		t.Fatal(err)
	}
	quitter.Close() // response to "goodbye" is still in flight
	if got := readFrame(t, stayer, 2*time.Second); got != "hello" {
		t.Fatalf("stayer got %q, want %q (FIFO skew after close?)", got, "hello")
	}
	stayer.Close()
	m.Close()
	waitBalanced(t, pool)
}

// waitBalanced polls until the pool's region gets/puts balance (deliveries
// race shutdown by a callback's length).
func waitBalanced(t *testing.T, pool *buffer.Pool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := pool.Stats()
		if s.RefGets == s.RefPuts {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("region leak: %d handed out, %d recycled", s.RefGets, s.RefPuts)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestConcurrentSessionsStress hammers one shared socket from many
// goroutines to give -race a fair shot at the correlation machinery.
func TestConcurrentSessionsStress(t *testing.T) {
	u := netstack.NewUserNet()
	defer echoServer(t, u, "be:stress").Close()
	m := testManager(u, nil, 2, 8)
	defer m.Close()

	const goroutines, rounds = 8, 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := m.Lease("be:stress")
			if err != nil {
				errs <- err
				return
			}
			defer s.Close()
			for i := 0; i < rounds; i++ {
				msg := fmt.Sprintf("g%d-%d", g, i)
				if _, err := s.Write(frame(msg)); err != nil {
					errs <- fmt.Errorf("write %s: %w", msg, err)
					return
				}
				s.SetReadDeadline(time.Now().Add(5 * time.Second))
				var h [4]byte
				if _, err := io.ReadFull(s, h[:]); err != nil {
					errs <- fmt.Errorf("read %s: %w", msg, err)
					return
				}
				p := make([]byte, binary.BigEndian.Uint32(h[:]))
				if _, err := io.ReadFull(s, p); err != nil {
					errs <- fmt.Errorf("read body %s: %w", msg, err)
					return
				}
				if string(p) != msg {
					errs <- fmt.Errorf("cross-delivery: got %q, want %q", p, msg)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestInflightForAndHealth pins the per-address in-flight gauge (the feed
// for bounded-load routing) and the HealthFor verdicts: the gauge rises on
// framed writes, falls on delivered responses, and drains fully when the
// shared socket fails with requests outstanding; health is idle before any
// socket, up with a live socket, down inside a fail-fast window.
func TestInflightForAndHealth(t *testing.T) {
	u := netstack.NewUserNet()
	defer echoServer(t, u, "be:echo").Close()
	m := testManager(u, nil, 1, 0)
	defer m.Close()

	if h := m.HealthFor("be:echo"); h != HealthIdle {
		t.Fatalf("health before first lease = %q, want %q", h, HealthIdle)
	}
	if v := m.InflightFor("be:echo"); v != 0 {
		t.Fatalf("inflight before first lease = %d, want 0", v)
	}

	// A backend that accepts and reads but never answers keeps its request
	// in flight indefinitely.
	l, err := u.Listen("be:silent")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	connCh := make(chan net.Conn, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		connCh <- c
		io.Copy(io.Discard, c)
	}()
	s, err := m.Lease("be:silent")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Write(frame("stuck")); err != nil {
		t.Fatal(err)
	}
	if v := m.InflightFor("be:silent"); v != 1 {
		t.Fatalf("inflight with one unanswered request = %d, want 1", v)
	}
	if h := m.HealthFor("be:silent"); h != HealthUp {
		t.Fatalf("health with live socket = %q, want %q", h, HealthUp)
	}

	// A completed round trip returns the gauge to zero: deliver decrements
	// before handing the response over, so after readFrame it is settled.
	s2, err := m.Lease("be:echo")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Write(frame("ping")); err != nil {
		t.Fatal(err)
	}
	if got := readFrame(t, s2, 2*time.Second); got != "ping" {
		t.Fatalf("echo got %q", got)
	}
	if v := m.InflightFor("be:echo"); v != 0 {
		t.Fatalf("inflight after round trip = %d, want 0", v)
	}

	// Socket failure with a request outstanding drains the gauge (fail
	// subtracts the whole FIFO count), asynchronously via the pump.
	(<-connCh).Close()
	deadline := time.Now().Add(2 * time.Second)
	for m.InflightFor("be:silent") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight stuck at %d after socket failure", m.InflightFor("be:silent"))
		}
		time.Sleep(time.Millisecond)
	}

	// A dead backend's failed dial opens the fail-fast window: down.
	if _, err := m.Lease("be:dead"); err == nil {
		t.Fatal("lease to unlistened address succeeded")
	}
	if h := m.HealthFor("be:dead"); h != HealthDown {
		t.Fatalf("health inside backoff window = %q, want %q", h, HealthDown)
	}
}
