// Golden-wire tests: the shared upstream layer driven by the REAL protocol
// framers (internal/proto/http, internal/proto/memcache) against scripted
// backends, pinning the request-aware demultiplexing end to end — HEAD on a
// shared socket, bodiless 304s, 100-continue interims, chunked bodies split
// across reads, quiet-get batches, and the loud failure for close-delimited
// responses. The in-package tests keep using a synthetic frame protocol;
// these use the real codecs (an external package avoids the import cycle:
// upstream cannot import the protocols it frames).
package upstream_test

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"flick/internal/backend"
	"flick/internal/buffer"
	"flick/internal/netstack"
	phttp "flick/internal/proto/http"
	"flick/internal/proto/memcache"
	"flick/internal/upstream"
	"flick/internal/value"
)

func httpManager(u *netstack.UserNet) *upstream.Manager {
	return upstream.NewManager(upstream.Config{
		Transport:      u,
		Size:           1, // every session shares ONE socket: desync is loud
		RequestFramer:  phttp.FrameRequestLen,
		ResponseFramer: phttp.FrameResponseLen,
		Backoff:        20 * time.Millisecond,
	})
}

// scriptedBackend accepts one connection on addr and hands it over raw.
func scriptedBackend(t *testing.T, u *netstack.UserNet, addr string) (net.Listener, chan net.Conn) {
	t.Helper()
	l, err := u.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	conns := make(chan net.Conn, 2)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			conns <- c
		}
	}()
	return l, conns
}

// readRequests reads from the backend side until count header terminators
// (\r\n\r\n) have arrived, returning everything read.
func readRequests(t *testing.T, c net.Conn, count int) []byte {
	t.Helper()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	var got []byte
	buf := make([]byte, 4096)
	for bytes.Count(got, []byte("\r\n\r\n")) < count {
		n, err := c.Read(buf)
		if n > 0 {
			got = append(got, buf[:n]...)
		}
		if err != nil {
			t.Fatalf("backend read: %v (got %q)", err, got)
		}
	}
	return got
}

// readExactly reads len(want) bytes from the session and compares them to
// the scripted wire.
func readExactly(t *testing.T, s *upstream.Session, want []byte, what string) {
	t.Helper()
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	got := make([]byte, len(want))
	if _, err := io.ReadFull(s, got); err != nil {
		t.Fatalf("%s: read: %v", what, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s:\n got %q\nwant %q", what, got, want)
	}
}

// TestWireHEADSharesSocket is the tentpole's golden test: a HEAD and a GET
// from different sessions multiplex onto one backend socket, the HEAD
// response advertises the entity's Content-Length without sending it, and
// both sessions still receive exactly their own response — no desync, no
// five stolen bytes.
func TestWireHEADSharesSocket(t *testing.T) {
	u := netstack.NewUserNet()
	l, conns := scriptedBackend(t, u, "be:head")
	defer l.Close()
	m := httpManager(u)
	defer m.Close()

	a, err := m.Lease("be:head")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := m.Lease("be:head")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := a.Write([]byte("HEAD /obj HTTP/1.1\r\nHost: h\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write([]byte("GET /obj HTTP/1.1\r\nHost: h\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	be := <-conns
	defer be.Close()
	readRequests(t, be, 2)

	headResp := []byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\n")
	getResp := []byte("HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nhello")
	if _, err := be.Write(append(append([]byte{}, headResp...), getResp...)); err != nil {
		t.Fatal(err)
	}
	readExactly(t, a, headResp, "HEAD response")
	readExactly(t, b, getResp, "GET response")
}

// TestWire304WithContentLength: a 304 echoing the validated entity's
// Content-Length is bodiless by rule; the next response on the socket must
// not be misread as its body.
func TestWire304WithContentLength(t *testing.T) {
	u := netstack.NewUserNet()
	l, conns := scriptedBackend(t, u, "be:304")
	defer l.Close()
	m := httpManager(u)
	defer m.Close()

	s, err := m.Lease("be:304")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s2, err := m.Lease("be:304")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	if _, err := s.Write([]byte("GET /cached HTTP/1.1\r\nHost: h\r\nIf-None-Match: \"v1\"\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Write([]byte("GET /fresh HTTP/1.1\r\nHost: h\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	be := <-conns
	defer be.Close()
	readRequests(t, be, 2)

	notModified := []byte("HTTP/1.1 304 Not Modified\r\nContent-Length: 1234\r\nETag: \"v1\"\r\n\r\n")
	fresh := []byte("HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
	if _, err := be.Write(append(append([]byte{}, notModified...), fresh...)); err != nil {
		t.Fatal(err)
	}
	readExactly(t, s, notModified, "304 response")
	readExactly(t, s2, fresh, "follow-up response")
}

// TestWireInterimContinue: a 100 Continue interim and the final response
// deliver to the requesting session as one view, in order.
func TestWireInterimContinue(t *testing.T) {
	u := netstack.NewUserNet()
	l, conns := scriptedBackend(t, u, "be:continue")
	defer l.Close()
	m := httpManager(u)
	defer m.Close()

	s, err := m.Lease("be:continue")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Write([]byte("POST /up HTTP/1.1\r\nHost: h\r\nExpect: 100-continue\r\nContent-Length: 4\r\n\r\ndata")); err != nil {
		t.Fatal(err)
	}
	be := <-conns
	defer be.Close()
	readRequests(t, be, 1)

	wire := []byte("HTTP/1.1 100 Continue\r\n\r\nHTTP/1.1 200 OK\r\nContent-Length: 7\r\n\r\ncreated")
	if _, err := be.Write(wire); err != nil {
		t.Fatal(err)
	}
	readExactly(t, s, wire, "interim+final")
}

// TestWireChunkedSplitAcrossReads: a chunked response trickling in across
// many raw socket writes still frames and delivers as one complete view.
func TestWireChunkedSplitAcrossReads(t *testing.T) {
	u := netstack.NewUserNet()
	l, conns := scriptedBackend(t, u, "be:chunk")
	defer l.Close()
	m := httpManager(u)
	defer m.Close()

	s, err := m.Lease("be:chunk")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Write([]byte("GET /stream HTTP/1.1\r\nHost: h\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	be := <-conns
	defer be.Close()
	readRequests(t, be, 1)

	wire := []byte("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n" +
		"6\r\nchunk1\r\n6\r\nchunk2\r\n0\r\n\r\n")
	for i := 0; i < len(wire); i += 7 {
		end := i + 7
		if end > len(wire) {
			end = len(wire)
		}
		if _, err := be.Write(wire[i:end]); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}
	readExactly(t, s, wire, "chunked response")
}

// TestWireCloseDelimitedFailsLoudly: a response framed only by connection
// close cannot be length-delimited on a shared socket; the layer must fail
// the socket (EOF) rather than deliver a truncated or unbounded view.
func TestWireCloseDelimitedFailsLoudly(t *testing.T) {
	u := netstack.NewUserNet()
	l, conns := scriptedBackend(t, u, "be:close")
	defer l.Close()
	m := httpManager(u)
	defer m.Close()

	s, err := m.Lease("be:close")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Write([]byte("GET /legacy HTTP/1.1\r\nHost: h\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	be := <-conns
	defer be.Close()
	readRequests(t, be, 1)
	if _, err := be.Write([]byte("HTTP/1.1 200 OK\r\nConnection: close\r\n\r\npartial body")); err != nil {
		t.Fatal(err)
	}
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	var p [16]byte
	if _, err := s.Read(p[:]); err != io.EOF {
		t.Fatalf("read of close-delimited response = %v, want EOF", err)
	}
}

// TestWireQuietGetBatch: the moxi-style quiet-get pipeline against a real
// memcached backend — GetQ (hit), GetQ (miss), Noop write as one FIFO unit,
// and the hit plus the Noop response come back as one delivered view while
// a neighbouring session's Get still correlates.
func TestWireQuietGetBatch(t *testing.T) {
	u := netstack.NewUserNet()
	pool := buffer.NewPool(64)
	be, err := backend.NewMemcachedServer(u, "be:mc")
	if err != nil {
		t.Fatal(err)
	}
	defer be.Close()
	be.Preload(map[string]string{"hit": "quiet-value", "loud": "loud-value"})

	m := upstream.NewManager(upstream.Config{
		Transport:      u,
		Pool:           pool,
		Size:           1,
		RequestFramer:  memcache.FrameRequestLen,
		ResponseFramer: memcache.FrameResponseLen,
		Backoff:        20 * time.Millisecond,
	})
	defer m.Close()

	s, err := m.Lease("be:mc")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	neighbour, err := m.Lease("be:mc")
	if err != nil {
		t.Fatal(err)
	}
	defer neighbour.Close()

	enc := func(op byte, key string, opaque uint32) []byte {
		wire, err := memcache.Codec.Encode(nil, memcache.Request(op, []byte(key), nil))
		if err != nil {
			t.Fatal(err)
		}
		wire[12], wire[13], wire[14], wire[15] =
			byte(opaque>>24), byte(opaque>>16), byte(opaque>>8), byte(opaque)
		return wire
	}
	var batch []byte
	batch = append(batch, enc(memcache.OpGetQ, "hit", 1)...)
	batch = append(batch, enc(memcache.OpGetQ, "missing", 2)...)
	batch = append(batch, enc(memcache.OpNoop, "", 9)...)
	if _, err := s.Write(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := neighbour.Write(enc(memcache.OpGet, "loud", 3)); err != nil {
		t.Fatal(err)
	}

	// The batch delivers as one view: the hit's response then the Noop's.
	readMsgs := func(sess *upstream.Session, want int) []value.Value {
		t.Helper()
		q := buffer.NewQueue(nil)
		dec := memcache.Codec.NewDecoder()
		buf := make([]byte, 4096)
		var msgs []value.Value
		sess.SetReadDeadline(time.Now().Add(2 * time.Second))
		for len(msgs) < want {
			if msg, ok, err := dec.Decode(q); err != nil {
				t.Fatalf("decode: %v", err)
			} else if ok {
				msgs = append(msgs, msg)
				continue
			}
			n, err := sess.Read(buf)
			if n > 0 {
				q.Append(buf[:n])
			}
			if err != nil {
				t.Fatalf("session read: %v", err)
			}
		}
		return msgs
	}
	msgs := readMsgs(s, 2)
	if op := msgs[0].Field("opcode").AsInt(); op != memcache.OpGetQ {
		t.Fatalf("first batch response opcode = %#x, want GetQ", op)
	}
	if v := msgs[0].Field("value").AsString(); v != "quiet-value" {
		t.Fatalf("quiet hit value = %q", v)
	}
	if op := msgs[1].Field("opcode").AsInt(); op != memcache.OpNoop {
		t.Fatalf("terminator response opcode = %#x, want Noop", op)
	}
	if opq := msgs[1].Field("opaque").AsInt(); opq != 9 {
		t.Fatalf("terminator opaque = %d, want 9", opq)
	}
	nmsgs := readMsgs(neighbour, 1)
	if v := nmsgs[0].Field("value").AsString(); v != "loud-value" {
		t.Fatalf("neighbour value = %q (FIFO skew past the batch?)", v)
	}
	memcache.ReleaseAll(msgs...)
	memcache.ReleaseAll(nmsgs...)
}
