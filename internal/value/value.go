// Package value defines the runtime value representation shared by the FLICK
// grammar engine (which parses wire bytes into values), the IR evaluator
// (which computes over them) and the task runtime (whose channels carry
// them).
//
// Values use a flat tagged struct rather than interfaces so that integers,
// booleans and byte-slice fields never box. Records hold their fields in a
// slice indexed through a RecordDesc, which is how the language's static
// typing pays off at runtime: field access is an array index, not a map
// lookup.
package value

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates runtime value kinds.
type Kind uint8

// Value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindString
	KindBytes
	KindList
	KindDict
	KindRecord
	KindOpaque
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	case KindBytes:
		return "bytes"
	case KindList:
		return "list"
	case KindDict:
		return "dict"
	case KindRecord:
		return "record"
	case KindOpaque:
		return "opaque"
	}
	return "invalid"
}

// Value is a runtime value. The zero value is Null.
type Value struct {
	Kind Kind
	I    int64       // bool (0/1) and int payload
	S    string      // string payload
	B    []byte      // bytes payload
	L    []Value     // list elements or record fields
	D    *Dict       // dict payload
	R    *RecordDesc // record descriptor when Kind == KindRecord
	X    any         // opaque payload (channel handles etc.)
	O    Region      // backing region for byte views (nil: payloads owned)
}

// Region is a refcounted backing store for zero-copy byte views. Values
// whose byte payloads alias pooled memory carry the region that keeps the
// memory alive; the last Release recycles it. buffer.Ref and the record
// owner below implement it.
type Region interface {
	// Retain adds one reference.
	Retain()
	// Release drops one reference, recycling the region at zero.
	Release()
}

// Retain adds a reference to the value's backing region. Owned values (no
// region) are unaffected. Every task that stores a value beyond the current
// call must Retain it; channels retain on push.
func (v Value) Retain() {
	if v.O != nil {
		v.O.Retain()
	}
}

// Release drops the caller's reference to the value's backing region. After
// Release the value's byte views must not be read: the pooled memory behind
// them may be recycled for a new message.
func (v Value) Release() {
	if v.O != nil {
		v.O.Release()
	}
}

// Detach returns a copy of v that owns all of its byte payloads: every
// byte-view field is copied into fresh memory and the backing region
// dropped (the caller's reference is NOT released). Use it before storing a
// decoded message beyond the task that is currently processing it — e.g.
// the global dictionary detaches on Set — so cached values survive buffer
// recycling. Values without a region are assumed owned and returned as-is;
// Field and the compiler's indexing paths attach the container's region to
// extracted views (see Borrow), so views of pooled records are detected.
// For a byte view carved out by hand (raw v.L[i] access, manual sub-slicing
// of pooled bytes) that carries no region, use Owned.
func Detach(v Value) Value {
	if v.O == nil {
		return v
	}
	v.O = nil
	return deepCopyBytes(v)
}

// Owned returns a copy of v that owns every byte payload it carries,
// copying unconditionally. A byte view carved from pooled memory without a
// region pointer (raw v.L[i] access, nested list elements) aliases memory
// Detach cannot tell from owned, so Owned is the safe choice when a value
// of unknown provenance must outlive the message it may have come from —
// e.g. record constructors storing argument values into a new record that
// is emitted downstream, or field assignments that move a view from one
// message into another.
func Owned(v Value) Value {
	v.O = nil
	return deepCopyBytes(v)
}

// deepCopyBytes copies every byte payload reachable from v into owned
// memory. Record field slices are copied too (pooled records recycle the
// slice on release).
func deepCopyBytes(v Value) Value {
	switch v.Kind {
	case KindBytes:
		v.B = append([]byte(nil), v.B...)
	case KindList, KindRecord:
		l := make([]Value, len(v.L))
		for i := range v.L {
			f := v.L[i]
			f.O = nil
			l[i] = deepCopyBytes(f)
		}
		v.L = l
	}
	return v
}

// Null is the null value.
var Null = Value{}

// Int makes an integer value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Bool makes a boolean value.
func Bool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{Kind: KindBool, I: i}
}

// Str makes a string value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bytes makes a bytes value (no copy).
func Bytes(b []byte) Value { return Value{Kind: KindBytes, B: b} }

// List makes a list value (no copy).
func List(elems ...Value) Value { return Value{Kind: KindList, L: elems} }

// Opaque wraps an arbitrary payload (used for channel references).
func Opaque(x any) Value { return Value{Kind: KindOpaque, X: x} }

// IsNull reports whether v is the null value.
func (v Value) IsNull() bool { return v.Kind == KindNull }

// AsBool returns the boolean payload (false for non-bools).
func (v Value) AsBool() bool { return v.Kind == KindBool && v.I != 0 }

// AsInt returns the integer payload, converting bools.
func (v Value) AsInt() int64 { return v.I }

// AsString returns a string form of string/bytes payloads.
func (v Value) AsString() string {
	switch v.Kind {
	case KindString:
		return v.S
	case KindBytes:
		return string(v.B)
	default:
		return ""
	}
}

// AsBytes returns the byte payload of string/bytes values without copying
// strings when possible.
func (v Value) AsBytes() []byte {
	switch v.Kind {
	case KindBytes:
		return v.B
	case KindString:
		return []byte(v.S)
	default:
		return nil
	}
}

// ByteLen returns the wire length of string/bytes payloads.
func (v Value) ByteLen() int {
	switch v.Kind {
	case KindBytes:
		return len(v.B)
	case KindString:
		return len(v.S)
	case KindList:
		return len(v.L)
	default:
		return 0
	}
}

// Equal compares two values structurally. Dicts compare by identity,
// opaques by interface equality.
func Equal(a, b Value) bool {
	if a.Kind != b.Kind {
		// Allow string/bytes cross-comparison: they are the same wire data.
		if (a.Kind == KindString && b.Kind == KindBytes) ||
			(a.Kind == KindBytes && b.Kind == KindString) {
			return a.AsString() == b.AsString()
		}
		return false
	}
	switch a.Kind {
	case KindNull:
		return true
	case KindBool, KindInt:
		return a.I == b.I
	case KindString:
		return a.S == b.S
	case KindBytes:
		return string(a.B) == string(b.B)
	case KindList, KindRecord:
		if a.Kind == KindRecord && a.R != b.R {
			return false
		}
		if len(a.L) != len(b.L) {
			return false
		}
		for i := range a.L {
			if !Equal(a.L[i], b.L[i]) {
				return false
			}
		}
		return true
	case KindDict:
		return a.D == b.D
	case KindOpaque:
		return a.X == b.X
	}
	return false
}

// String renders a value for debugging.
func (v Value) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindString:
		return strconv.Quote(v.S)
	case KindBytes:
		if len(v.B) > 32 {
			return fmt.Sprintf("bytes[%d]", len(v.B))
		}
		return strconv.Quote(string(v.B))
	case KindList:
		var sb strings.Builder
		sb.WriteByte('[')
		for i, e := range v.L {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(']')
		return sb.String()
	case KindDict:
		return fmt.Sprintf("dict(%d)", v.D.Len())
	case KindRecord:
		var sb strings.Builder
		sb.WriteString(v.R.Name)
		sb.WriteByte('{')
		for i, f := range v.R.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f)
			sb.WriteByte('=')
			if i < len(v.L) {
				sb.WriteString(v.L[i].String())
			}
		}
		sb.WriteByte('}')
		return sb.String()
	case KindOpaque:
		return fmt.Sprintf("opaque(%T)", v.X)
	}
	return "invalid"
}

// RecordDesc describes a record type's field layout. Descs are built once
// (at compile time) and shared by every instance, so field lookup is cheap
// and instances are just value slices.
type RecordDesc struct {
	Name   string
	Fields []string
	index  map[string]int
	once   sync.Once
	owners sync.Pool // recycled *owner headers (NewOwned)
}

// NewRecordDesc builds a descriptor for the named record type.
func NewRecordDesc(name string, fields ...string) *RecordDesc {
	return &RecordDesc{Name: name, Fields: fields}
}

// FieldIndex returns the slot of the named field, or -1.
func (d *RecordDesc) FieldIndex(name string) int {
	d.once.Do(func() {
		d.index = make(map[string]int, len(d.Fields))
		for i, f := range d.Fields {
			d.index[f] = i
		}
	})
	i, ok := d.index[name]
	if !ok {
		return -1
	}
	return i
}

// New creates a record instance with null fields.
func (d *RecordDesc) New() Value {
	return Value{Kind: KindRecord, R: d, L: make([]Value, len(d.Fields))}
}

// owner is the per-message lifecycle of a pooled record: it refcounts the
// record, recycles the field slice into the desc's freelist on the last
// Release, and releases the backing byte region with it. A record and the
// wire bytes its views alias therefore live and die together.
type owner struct {
	refs   atomic.Int32
	region Region
	fields []Value
	desc   *RecordDesc
}

// Retain implements Region.
func (o *owner) Retain() { o.refs.Add(1) }

// Release implements Region. Releasing past zero panics: it means two tasks
// both believed they held the last reference (a double free that would
// recycle live memory).
func (o *owner) Release() {
	n := o.refs.Add(-1)
	if n > 0 {
		return
	}
	if n < 0 {
		panic("value: record released after refcount reached zero")
	}
	region := o.region
	o.region = nil
	for i := range o.fields {
		o.fields[i] = Value{}
	}
	o.desc.owners.Put(o)
	if region != nil {
		region.Release()
	}
}

// NewOwned creates a pooled record instance with one reference held by the
// caller. The field slice is drawn from a per-desc freelist and returns to
// it when the last reference is released; region (which may be nil) is
// released at the same moment. This is the allocation-free decode path:
// decoders wrap the message's pooled wire chunk and hand ownership
// downstream with the record.
func (d *RecordDesc) NewOwned(region Region) Value {
	o, _ := d.owners.Get().(*owner)
	if o == nil {
		o = &owner{desc: d, fields: make([]Value, len(d.Fields))}
	}
	o.refs.Store(1)
	o.region = region
	return Value{Kind: KindRecord, R: d, L: o.fields, O: o}
}

// Record builds a record instance from field values in declaration order.
func (d *RecordDesc) Record(fields ...Value) Value {
	l := make([]Value, len(d.Fields))
	copy(l, fields)
	return Value{Kind: KindRecord, R: d, L: l}
}

// Field returns the named field of a record value (Null when absent).
//
// A byte-carrying field of a pooled record is a view into the record's
// backing region, so the returned value carries that region as a borrowed
// reference (no Retain): every escape mechanism — Chan.Push retaining on
// enqueue, Dict.Set detaching on store, Detach copying before caching —
// then sees the provenance and keeps the bytes alive or copies them.
// Callers using the field within the record's lifetime pay nothing.
func (v Value) Field(name string) Value {
	if v.Kind != KindRecord || v.R == nil {
		return Null
	}
	i := v.R.FieldIndex(name)
	if i < 0 || i >= len(v.L) {
		return Null
	}
	return Borrow(v.L[i], v.O)
}

// Borrow attaches region to a byte-carrying element extracted from a
// container backed by it, unless the element already tracks its own region.
// Scalar kinds never alias pooled memory and pass through untouched. The
// attachment is a borrowed reference: no Retain happens, the element is
// simply no longer mistakable for owned memory.
func Borrow(f Value, region Region) Value {
	if f.O == nil && region != nil {
		switch f.Kind {
		case KindBytes, KindList, KindRecord:
			f.O = region
		}
	}
	return f
}

// SetField assigns the named field of a record value in place.
//
// Mutating any field other than "_raw" also invalidates the record's
// captured wire image (the hidden "_raw" slot kept by CaptureRaw codecs):
// the image caches the serialisation of the other fields, and encoders
// prefer replaying it verbatim — stale, it would silently drop the
// mutation from the wire. Decoders populating a fresh record write slots
// directly (v.L[i]) and are unaffected.
func (v Value) SetField(name string, x Value) bool {
	if v.Kind != KindRecord || v.R == nil {
		return false
	}
	i := v.R.FieldIndex(name)
	if i < 0 || i >= len(v.L) {
		return false
	}
	v.L[i] = x
	if name != "_raw" {
		if ri := v.R.FieldIndex("_raw"); ri >= 0 && ri < len(v.L) {
			v.L[ri] = Null
		}
	}
	return true
}

// Dict is the FLICK dictionary: string-keyed shared state. Processes declare
// one with the `global` qualifier and every instance of the service shares
// it, so access is guarded by a read/write mutex (§4.3: "Multiple instances
// of the service share the key/value store").
type Dict struct {
	mu sync.RWMutex
	m  map[string]Value
}

// NewDict creates an empty dictionary value.
func NewDict() Value {
	return Value{Kind: KindDict, D: &Dict{m: make(map[string]Value)}}
}

// Get returns the value stored under key and whether it was present.
func (d *Dict) Get(key string) (Value, bool) {
	d.mu.RLock()
	v, ok := d.m[key]
	d.mu.RUnlock()
	return v, ok
}

// Set stores v under key. The stored copy is detached from any pooled
// backing region: dictionaries outlive the message that produced the value
// (the router's cache serves entries long after the original wire buffer
// has been recycled), so Set deep-copies byte views into owned memory.
func (d *Dict) Set(key string, v Value) {
	v = Detach(v)
	d.mu.Lock()
	d.m[key] = v
	d.mu.Unlock()
}

// Delete removes key.
func (d *Dict) Delete(key string) {
	d.mu.Lock()
	delete(d.m, key)
	d.mu.Unlock()
}

// Len returns the number of entries.
func (d *Dict) Len() int {
	d.mu.RLock()
	n := len(d.m)
	d.mu.RUnlock()
	return n
}

// Range calls fn for each entry until fn returns false. The dictionary is
// locked for reading during the walk.
func (d *Dict) Range(fn func(k string, v Value) bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for k, v := range d.m {
		if !fn(k, v) {
			return
		}
	}
}
