package value

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(5).AsInt() != 5 {
		t.Fatal("int")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Fatal("bool")
	}
	if Str("hi").AsString() != "hi" {
		t.Fatal("str")
	}
	if string(Bytes([]byte("ab")).AsBytes()) != "ab" {
		t.Fatal("bytes")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Fatal("null")
	}
	l := List(Int(1), Int(2))
	if l.Kind != KindList || len(l.L) != 2 {
		t.Fatal("list")
	}
	if Opaque(42).X != 42 {
		t.Fatal("opaque")
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindNull, KindBool, KindInt, KindString, KindBytes,
		KindList, KindDict, KindRecord, KindOpaque, Kind(99)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("kind %d has empty name", k)
		}
	}
}

func TestStringBytesCoercion(t *testing.T) {
	s := Str("key")
	b := Bytes([]byte("key"))
	if !Equal(s, b) || !Equal(b, s) {
		t.Fatal("string/bytes should compare equal on same data")
	}
	if s.AsString() != b.AsString() {
		t.Fatal("AsString differs")
	}
	if string(s.AsBytes()) != "key" {
		t.Fatal("AsBytes on string")
	}
}

func TestByteLen(t *testing.T) {
	if Str("abc").ByteLen() != 3 || Bytes([]byte("ab")).ByteLen() != 2 {
		t.Fatal("byte len")
	}
	if List(Int(1)).ByteLen() != 1 {
		t.Fatal("list len")
	}
	if Int(7).ByteLen() != 0 {
		t.Fatal("int len")
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Null, Null, true},
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Int(1), false},
		{Str("a"), Str("a"), true},
		{List(Int(1)), List(Int(1)), true},
		{List(Int(1)), List(Int(2)), false},
		{List(Int(1)), List(Int(1), Int(2)), false},
	}
	for i, c := range cases {
		if Equal(c.a, c.b) != c.want {
			t.Errorf("case %d: Equal(%v, %v) != %v", i, c.a, c.b, c.want)
		}
	}
}

func TestRecordDesc(t *testing.T) {
	d := NewRecordDesc("kv", "key", "value")
	if d.FieldIndex("key") != 0 || d.FieldIndex("value") != 1 {
		t.Fatal("field index")
	}
	if d.FieldIndex("missing") != -1 {
		t.Fatal("missing field index")
	}
	r := d.Record(Str("k1"), Str("v1"))
	if r.Field("key").AsString() != "k1" {
		t.Fatal("field access")
	}
	if !r.SetField("value", Str("v2")) {
		t.Fatal("setfield failed")
	}
	if r.Field("value").AsString() != "v2" {
		t.Fatal("setfield did not stick")
	}
	if r.SetField("missing", Null) {
		t.Fatal("setfield on missing succeeded")
	}
	if !r.Field("missing").IsNull() {
		t.Fatal("missing field should be null")
	}
	empty := d.New()
	if !empty.Field("key").IsNull() {
		t.Fatal("new record fields should be null")
	}
}

func TestRecordEqualIdentity(t *testing.T) {
	d1 := NewRecordDesc("a", "x")
	d2 := NewRecordDesc("a", "x")
	r1 := d1.Record(Int(1))
	r2 := d2.Record(Int(1))
	if Equal(r1, r2) {
		t.Fatal("records of different descs should not be equal")
	}
	if !Equal(r1, d1.Record(Int(1))) {
		t.Fatal("same desc same fields should be equal")
	}
}

func TestFieldOnNonRecord(t *testing.T) {
	if !Int(1).Field("x").IsNull() {
		t.Fatal("Field on int should be null")
	}
	if Int(1).SetField("x", Null) {
		t.Fatal("SetField on int should fail")
	}
}

func TestDict(t *testing.T) {
	dv := NewDict()
	d := dv.D
	if _, ok := d.Get("a"); ok {
		t.Fatal("empty dict has a")
	}
	d.Set("a", Int(1))
	v, ok := d.Get("a")
	if !ok || v.AsInt() != 1 {
		t.Fatal("get after set")
	}
	if d.Len() != 1 {
		t.Fatal("len")
	}
	d.Delete("a")
	if d.Len() != 0 {
		t.Fatal("delete")
	}
}

func TestDictRange(t *testing.T) {
	dv := NewDict()
	for _, k := range []string{"a", "b", "c"} {
		dv.D.Set(k, Str(k))
	}
	seen := 0
	dv.D.Range(func(k string, v Value) bool {
		seen++
		return true
	})
	if seen != 3 {
		t.Fatalf("range saw %d", seen)
	}
	seen = 0
	dv.D.Range(func(k string, v Value) bool {
		seen++
		return false
	})
	if seen != 1 {
		t.Fatalf("early-exit range saw %d", seen)
	}
}

func TestDictConcurrent(t *testing.T) {
	dv := NewDict()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := string(rune('a' + g))
			for i := 0; i < 1000; i++ {
				dv.D.Set(key, Int(int64(i)))
				dv.D.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if dv.D.Len() != 8 {
		t.Fatalf("len = %d", dv.D.Len())
	}
}

func TestValueString(t *testing.T) {
	d := NewRecordDesc("kv", "k")
	vals := []Value{
		Null, Bool(true), Bool(false), Int(-3), Str("s"),
		Bytes([]byte("b")), Bytes(make([]byte, 100)),
		List(Int(1), Int(2)), NewDict(), d.Record(Int(9)), Opaque("x"),
	}
	for _, v := range vals {
		if v.String() == "" {
			t.Fatalf("empty String() for kind %v", v.Kind)
		}
	}
}

// Property: Equal is reflexive for int/string/bytes/bool values.
func TestEqualReflexiveProperty(t *testing.T) {
	f := func(i int64, s string, b []byte, ok bool) bool {
		vals := []Value{Int(i), Str(s), Bytes(b), Bool(ok)}
		for _, v := range vals {
			if !Equal(v, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: string/bytes equality matches Go string equality.
func TestStrBytesEqualProperty(t *testing.T) {
	f := func(a, b string) bool {
		return Equal(Str(a), Bytes([]byte(b))) == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
