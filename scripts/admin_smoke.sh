#!/bin/sh
# Control-plane smoke test: build flickrun, serve the memcached proxy
# with the admin API enabled, and drive a scale-out entirely over HTTP.
#
#   1. GET /healthz answers "ok".
#   2. GET /counters returns a JSON object with the registered sets.
#   3. GET /latency returns the live latency dimensions with the pinned
#      histogram shape (count/p50/p99/p999/max).
#   4. PUT /topology grows the backend set 2 -> 3.
#   5. GET /topology shows the third backend.
#   6. PUT /topology with more backends than -max-backends answers 409.
#
# Backends are fake addresses: upstream dials are lazy, so the control
# plane is fully exercisable without live backends. Run from the repo
# root (make admin-smoke).
set -eu

ADMIN=127.0.0.1:17070
LISTEN=127.0.0.1:18080
BIN=$(mktemp -d)/flickrun
trap 'kill $PID 2>/dev/null || true; rm -rf "$(dirname "$BIN")"' EXIT INT TERM

go build -o "$BIN" ./cmd/flickrun

"$BIN" -service memcachedproxy -listen "$LISTEN" \
    -live-topology -max-backends 3 -admin-addr "$ADMIN" \
    -backend 127.0.0.1:29001 -backend 127.0.0.1:29002 &
PID=$!

# Wait for the admin listener.
i=0
until curl -sf "http://$ADMIN/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "admin-smoke: admin API never came up on $ADMIN" >&2
        exit 1
    fi
    sleep 0.1
done

fail() {
    echo "admin-smoke: $1" >&2
    exit 1
}

# 1. /healthz
out=$(curl -sf "http://$ADMIN/healthz")
[ "$out" = "ok" ] || fail "/healthz said '$out', want 'ok'"

# 2. /counters is a JSON object holding the registered sets.
counters=$(curl -sf "http://$ADMIN/counters")
case $counters in
    *'"sched"'*'"control"'*) ;;
    *) fail "/counters missing expected sets: $counters" ;;
esac

# 3. /latency serves the live pipeline: the service-total and upstream
# dimensions with the pinned histogram field order. No traffic has
# flowed, so counts are 0 — the shape is what the smoke pins.
latency=$(curl -sf "http://$ADMIN/latency")
case $latency in
    '{"total":{"count":'*'"upstream":{"count":'*) ;;
    *) fail "/latency missing dimensions or order not pinned: $latency" ;;
esac
case $latency in
    *'"p50"'*'"p99"'*'"p999"'*'"max"'*) ;;
    *) fail "/latency missing histogram fields: $latency" ;;
esac

# 4. PUT a 3-backend topology (one weighted) through the one update path.
code=$(curl -s -o /tmp/admin_smoke_put.$$ -w '%{http_code}' -X PUT \
    -d '{"backends":["127.0.0.1:29001","127.0.0.1:29002",{"addr":"127.0.0.1:29003","weight":2}]}' \
    "http://$ADMIN/topology")
[ "$code" = "200" ] || fail "PUT /topology = $code: $(cat /tmp/admin_smoke_put.$$)"
rm -f /tmp/admin_smoke_put.$$

# 5. The change is visible in GET /topology.
topo=$(curl -sf "http://$ADMIN/topology")
case $topo in
    *'127.0.0.1:29003'*) ;;
    *) fail "PUT not visible in GET /topology: $topo" ;;
esac
case $topo in
    *'"weight":2'*) ;;
    *) fail "weight 2 not visible in GET /topology: $topo" ;;
esac

# 6. Over capacity -> 409, topology unchanged.
code=$(curl -s -o /dev/null -w '%{http_code}' -X PUT \
    -d '{"backends":["a:1","b:1","c:1","d:1"]}' "http://$ADMIN/topology")
[ "$code" = "409" ] || fail "over-capacity PUT = $code, want 409"
topo=$(curl -sf "http://$ADMIN/topology")
case $topo in
    *'"a:1"'*) fail "rejected PUT changed the topology: $topo" ;;
esac

echo "admin-smoke: ok (healthz, counters, latency shape, PUT 2->3, weight visible, 409 on overflow)"
