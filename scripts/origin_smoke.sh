#!/bin/sh
# Wire-level origin smoke test: build chunkedorigin (a stock net/http
# HTTP/1.1 origin) and flickrun, front the origin with the FLICK HTTP
# load balancer over kernel TCP, and prove the balancer is invisible on
# the wire:
#
#   1. /payload (Content-Length) through the LB is byte-identical to a
#      direct fetch.
#   2. /chunked arrives with its chunked transfer-encoding intact and the
#      raw response bytes match a direct fetch — the framing the shared
#      upstream layer historically refused.
#   3. /cached cold fetch matches direct (200 + ETag).
#   4. /cached with If-None-Match answers 304 Not Modified with no body,
#      again byte-identical to direct.
#   5. A second, cached balancer serves the repeat fetch from memory with
#      an Age header, answers the client's If-None-Match with a 304
#      synthesized in the cache, and — once the 1s TTL lapses — keeps
#      serving while a background conditional GET revalidates against the
#      origin (the admin cache.revalidated counter moves).
#
# The origin suppresses the Date header, so "byte-identical" is literal.
# Run from the repo root (make origin-smoke).
set -eu

ORIGIN=127.0.0.1:19091
LB=127.0.0.1:19090
CLB=127.0.0.1:19092
CADMIN=127.0.0.1:19093
ETAG='"flick-origin-v1"'
DIR=$(mktemp -d)
ORIGIN_PID=""; LB_PID=""; CLB_PID=""
trap 'kill $ORIGIN_PID $LB_PID $CLB_PID 2>/dev/null || true; rm -rf "$DIR"' EXIT INT TERM

go build -o "$DIR/chunkedorigin" ./cmd/chunkedorigin
go build -o "$DIR/flickrun" ./cmd/flickrun

"$DIR/chunkedorigin" -listen "$ORIGIN" &
ORIGIN_PID=$!
"$DIR/flickrun" -service httplb -listen "$LB" -backend "$ORIGIN" &
LB_PID=$!
"$DIR/flickrun" -service httplb -listen "$CLB" -backend "$ORIGIN" \
    -cache -cache-ttl 1s -cache-stale-ttl 30s -admin-addr "$CADMIN" &
CLB_PID=$!

fail() {
    echo "origin-smoke: $1" >&2
    exit 1
}

# Wait until the origin and both balancers answer.
for addr in "$ORIGIN" "$LB" "$CLB"; do
    i=0
    until curl -sf -o /dev/null "http://$addr/payload" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -ge 50 ] || { sleep 0.1; continue; }
        fail "$addr never came up"
    done
done

# fetch ADDR URI ETAG OUTFILE — one raw fetch (headers + undecoded body)
# on a fresh connection; chunked framing is captured verbatim.
fetch() {
    if [ -n "$3" ]; then
        curl -s --raw -H "If-None-Match: $3" -D - "http://$1$2" >"$4"
    else
        curl -s --raw -D - "http://$1$2" >"$4"
    fi
}

# 1. Content-Length route: LB fetch == direct fetch, byte for byte.
fetch "$LB" /payload "" "$DIR/payload.via"
fetch "$ORIGIN" /payload "" "$DIR/payload.direct"
cmp -s "$DIR/payload.via" "$DIR/payload.direct" \
    || fail "/payload differs through the balancer"

# 2. Chunked route: transfer-encoding survives the proxy and the raw
# bytes (chunk sizes, extensions, terminator included) match direct.
fetch "$LB" /chunked "" "$DIR/chunked.via"
fetch "$ORIGIN" /chunked "" "$DIR/chunked.direct"
grep -qi 'transfer-encoding: chunked' "$DIR/chunked.via" \
    || fail "/chunked through the balancer lost its chunked framing"
cmp -s "$DIR/chunked.via" "$DIR/chunked.direct" \
    || fail "/chunked differs through the balancer"

# 3. Conditional route, cold: 200 with the entity and its ETag.
fetch "$LB" /cached "" "$DIR/cached.via"
fetch "$ORIGIN" /cached "" "$DIR/cached.direct"
grep -q 'HTTP/1.1 200' "$DIR/cached.via" || fail "/cached cold fetch not a 200"
grep -qF "$ETAG" "$DIR/cached.via" || fail "/cached lost its ETag"
cmp -s "$DIR/cached.via" "$DIR/cached.direct" \
    || fail "/cached differs through the balancer"

# 4. Validator hit: bodiless 304 forwarded intact.
fetch "$LB" /cached "$ETAG" "$DIR/304.via"
fetch "$ORIGIN" /cached "$ETAG" "$DIR/304.direct"
grep -q 'HTTP/1.1 304' "$DIR/304.via" || fail "validator hit not a 304"
cmp -s "$DIR/304.via" "$DIR/304.direct" \
    || fail "304 differs through the balancer"

# 5. Freshness leg through the cached balancer. The cold fetch misses and
# fills; the repeat must be a cache hit, visible on the wire as the Age
# header the cache patches into every served copy.
fetch "$CLB" /cached "" "$DIR/cached.cold"
grep -q 'HTTP/1.1 200' "$DIR/cached.cold" || fail "cached-LB cold fetch not a 200"
fetch "$CLB" /cached "" "$DIR/cached.hit"
grep -qi '^age:' "$DIR/cached.hit" || fail "cached-LB repeat fetch carries no Age header — not served from cache"

# A client validator against the cached copy: the 304 is synthesized in
# the cache (the entry is fresh, so no origin round trip is needed) and
# must carry the entity's ETag.
fetch "$CLB" /cached "$ETAG" "$DIR/cached.304"
grep -q 'HTTP/1.1 304' "$DIR/cached.304" || fail "cached-LB validator hit not a 304"
grep -qF "$ETAG" "$DIR/cached.304" || fail "cache-synthesized 304 lost the ETag"

# Let the TTL lapse, fetch through the stale window, and wait for the
# background conditional refresh to land: the origin answers 304 and the
# cache's revalidated counter moves.
sleep 1.2
fetch "$CLB" /cached "" "$DIR/cached.stale"
grep -q 'HTTP/1.1 200' "$DIR/cached.stale" || fail "stale-window fetch not served"
i=0
until curl -s "http://$CADMIN/counters" | grep -o '"revalidated":[0-9]*' \
        | head -1 | grep -qv '"revalidated":0'; do
    i=$((i + 1))
    [ "$i" -ge 50 ] || { sleep 0.1; fetch "$CLB" /cached "" /dev/null; continue; }
    fail "cache.revalidated never moved — background revalidation did not land"
done

echo "origin-smoke: ok (payload, chunked passthrough, cached 200, conditional 304 byte-identical; cached LB: Age hit, synthesized 304, background revalidation)"
